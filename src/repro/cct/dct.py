"""Dynamic call tree, dynamic call graph, and the DCT -> CCT projection.

Figure 4 of the paper contrasts three representations of calling
behaviour: the dynamic call tree (one vertex per activation, size
proportional to the number of calls), the dynamic call graph (one
vertex per procedure, maximal aggregation, the "gprof problem"), and
the calling context tree between them.

The CCT is *defined* as a projection of the DCT under a vertex
equivalence (§4.1): v ~ w iff they are the same procedure and their
parents are equivalent — refined, for recursion, so that every
occurrence of P at or below an instance of P collapses into that
instance (Figure 5).  :func:`project_cct` implements the definition
directly; tests compare it against the on-line construction of
:mod:`repro.cct.runtime`, which must produce the identical tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cct.records import ROOT_ID, CalleeList, CallRecord


class DCTNode:
    """One procedure activation."""

    __slots__ = ("proc", "site", "parent", "children")

    def __init__(self, proc: str, site: int, parent: Optional["DCTNode"]):
        self.proc = proc
        self.site = site
        self.parent = parent
        self.children: List[DCTNode] = []

    def size(self) -> int:
        """Number of activations in this subtree (including self)."""
        total = 1
        stack = list(self.children)
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children)
        return total

    def __repr__(self) -> str:
        return f"DCTNode({self.proc!r}, {len(self.children)} children)"


class DynamicCallTree:
    """The full DCT; its root is the distinguished non-procedure vertex."""

    def __init__(self) -> None:
        self.root = DCTNode(ROOT_ID, -1, None)

    def size(self) -> int:
        """Activations recorded (root excluded)."""
        return self.root.size() - 1

    def paths(self) -> Iterator[Tuple[str, ...]]:
        """All root-to-vertex call chains (procedure names)."""
        stack: List[Tuple[DCTNode, Tuple[str, ...]]] = [(self.root, ())]
        while stack:
            node, prefix = stack.pop()
            for child in node.children:
                chain = prefix + (child.proc,)
                yield chain
                stack.append((child, chain))


class DynamicCallRecorder:
    """A machine tracer that records the DCT during execution.

    Attach as ``machine.tracer``; the VM reports every frame push/pop
    (including frames killed by longjmp), so the recorder's stack stays
    balanced.
    """

    def __init__(self) -> None:
        self.tree = DynamicCallTree()
        self._stack: List[DCTNode] = [self.tree.root]

    # -- tracer protocol ------------------------------------------------------

    def on_enter(self, proc: str, site: int) -> None:
        node = DCTNode(proc, site, self._stack[-1])
        self._stack[-1].children.append(node)
        self._stack.append(node)

    def on_exit(self, proc: str, value) -> None:
        if len(self._stack) <= 1:
            raise RuntimeError("call recorder stack underflow")
        self._stack.pop()

    def on_block(self, proc: str, block: str) -> None:
        pass


@dataclass(frozen=True)
class DCGEdge:
    caller: str
    callee: str


class DynamicCallGraph:
    """Figure 4(b): one vertex per procedure, call counts on edges."""

    def __init__(self) -> None:
        self.procs: Dict[str, int] = {}
        self.edges: Dict[DCGEdge, int] = {}

    @classmethod
    def from_dct(cls, dct: DynamicCallTree) -> "DynamicCallGraph":
        graph = cls()
        stack = [dct.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                graph.procs[child.proc] = graph.procs.get(child.proc, 0) + 1
                if node.proc != ROOT_ID:
                    edge = DCGEdge(node.proc, child.proc)
                    graph.edges[edge] = graph.edges.get(edge, 0) + 1
                stack.append(child)
        return graph

    def calls_to(self, callee: str) -> int:
        return sum(count for edge, count in self.edges.items() if edge.callee == callee)

    def callers_of(self, callee: str) -> List[Tuple[str, int]]:
        return sorted(
            (edge.caller, count)
            for edge, count in self.edges.items()
            if edge.callee == callee
        )


# ---------------------------------------------------------------------------
# The defining projection
# ---------------------------------------------------------------------------


class ProjectedNode:
    """A CCT vertex produced by projecting a DCT."""

    __slots__ = ("proc", "parent", "children", "count")

    def __init__(self, proc: str, parent: Optional["ProjectedNode"]):
        self.proc = proc
        self.parent = parent
        #: (site, proc) -> child (which may be an ancestor: a backedge).
        self.children: Dict[Tuple[int, str], ProjectedNode] = {}
        self.count = 0

    def context(self) -> List[str]:
        names: List[str] = []
        node: Optional[ProjectedNode] = self
        while node is not None:
            names.append(node.proc)
            node = node.parent
        names.reverse()
        return names


def project_cct(dct: DynamicCallTree, by_site: bool = True) -> ProjectedNode:
    """Apply the vertex equivalence of §4.1 to a DCT.

    With ``by_site=False`` calls to the same procedure from different
    sites of one caller share a child (the space/precision trade-off
    §4.1 describes); ``True`` matches the implemented runtime.
    """
    root = ProjectedNode(ROOT_ID, None)
    stack: List[Tuple[DCTNode, ProjectedNode]] = [(dct.root, root)]
    while stack:
        dnode, pnode = stack.pop()
        for child in dnode.children:
            # The program entry's "call" has no site; the root record
            # reserves slot 0 for it (paper §4.2).
            site = child.site if child.site >= 0 else 0
            key = (site if by_site else 0, child.proc)
            existing = pnode.children.get(key)
            if existing is None:
                # Recursion rule: an occurrence of P below an instance
                # of P is equivalent to that instance.
                ancestor = _ancestor_with_proc(pnode, child.proc)
                if ancestor is not None:
                    existing = ancestor
                else:
                    existing = ProjectedNode(child.proc, pnode)
                pnode.children[key] = existing
            existing.count += 1
            stack.append((child, existing))
    return root


def _ancestor_with_proc(node: Optional[ProjectedNode], proc: str) -> Optional[ProjectedNode]:
    while node is not None:
        if node.proc == proc:
            return node
        node = node.parent
    return None


# ---------------------------------------------------------------------------
# Canonical forms (for testing on-line CCT == projected CCT)
# ---------------------------------------------------------------------------


def canonical_projected(node: ProjectedNode) -> str:
    """Deterministic serialization; backedges encode as ``^k``."""
    return _canon(
        node,
        lambda n: sorted(
            (site, proc, child) for (site, proc), child in n.children.items()
        ),
        [],
    )


def canonical_record(record: CallRecord) -> str:
    """Same form for an on-line :class:`CallRecord` tree."""

    def children(rec: CallRecord):
        out = []
        for site, slot in enumerate(rec.slots):
            if slot is None:
                continue
            if isinstance(slot, CalleeList):
                for child in slot.records():
                    out.append((site, child.id, child))
            else:
                out.append((site, slot.id, slot))
        return sorted(out, key=lambda item: (item[0], item[1]))

    return _canon(record, children, [])


def _canon(node, children_fn, trail: list) -> str:
    trail.append(node)
    parts = []
    for site, proc, child in children_fn(node):
        if child in trail or _is_same_in(child, trail):
            distance = len(trail) - 1 - _index_in(child, trail)
            parts.append(f"{site}:^{distance}")
        else:
            parts.append(f"{site}:{_canon(child, children_fn, trail)}")
    trail.pop()
    name = getattr(node, "proc", None) or getattr(node, "id", "?")
    freq = getattr(node, "count", None)
    if freq is None:
        metrics = getattr(node, "metrics", None)
        freq = metrics[0] if metrics else 0
    return f"({name}*{freq}[{','.join(parts)}])"


def _is_same_in(child, trail) -> bool:
    return any(entry is child for entry in trail)


def _index_in(child, trail) -> int:
    for index, entry in enumerate(trail):
        if entry is child:
            return index
    raise ValueError("not in trail")
