"""Bottom-up DCT compaction by hash consing: the [JSB97] baseline (§7.3).

Jerding, Stasko and Ball compact a dynamic call tree into a DAG in
which identical *subtrees* are represented once.  The paper contrasts
this with the CCT: DAG node equivalence looks down (the subtree rooted
at a node), CCT equivalence looks up (the path to a node).  Two
activations with identical calling contexts may therefore map to
different DAG nodes (their futures differ), and two activations with
different contexts may share a DAG node (their futures coincide).

Tests exhibit both separations, and the size comparison shows all
three points on the spectrum: |DCT| >= |DAG| and |DCT| >= |CCT|, with
neither compaction dominating the other in general.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cct.dct import DCTNode, DynamicCallTree


class DagNode:
    """One shared subtree; ``count`` is how many DCT subtrees it stands for."""

    __slots__ = ("proc", "children", "count", "_key")

    def __init__(self, proc: str, children: Tuple["DagNode", ...]):
        self.proc = proc
        self.children = children
        self.count = 0
        self._key: Optional[Tuple] = None

    def subtree_size(self) -> int:
        """Size of the represented subtree (counting shared nodes again)."""
        return 1 + sum(child.subtree_size() for child in self.children)

    def __repr__(self) -> str:
        return f"DagNode({self.proc!r}, {len(self.children)} children, x{self.count})"


@dataclass
class CompactedDag:
    root: DagNode
    #: Distinct DAG nodes created (root excluded).
    unique_nodes: int
    #: Activations in the original DCT.
    tree_size: int

    @property
    def compression(self) -> float:
        return self.tree_size / self.unique_nodes if self.unique_nodes else 0.0


def compact_dag(dct: DynamicCallTree) -> CompactedDag:
    """Hash-cons the DCT bottom-up into a DAG.

    Interning is iterative (post-order with an explicit stack) so deep
    call trees cannot overflow Python's recursion limit.
    """
    interned: Dict[Tuple, DagNode] = {}
    root = _intern_iterative(dct.root, interned)
    unique = len(interned) - 1  # the root's own entry doesn't count
    return CompactedDag(root, max(unique, 0), dct.size())


def _intern_iterative(root: DCTNode, interned: Dict[Tuple, DagNode]) -> DagNode:
    done: Dict[int, DagNode] = {}
    stack: List[Tuple[DCTNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            children = tuple(done[id(child)] for child in node.children)
            key = (node.proc, tuple(id(child) for child in children))
            dag_node = interned.get(key)
            if dag_node is None:
                dag_node = DagNode(node.proc, children)
                interned[key] = dag_node
            dag_node.count += 1
            done[id(node)] = dag_node
        else:
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
    return done[id(root)]


def dag_statistics(dag: CompactedDag) -> Dict[str, object]:
    return {
        "DCT activations": dag.tree_size,
        "DAG unique nodes": dag.unique_nodes,
        "Compression": round(dag.compression, 2),
    }
