"""CCT serialization.

The paper's instrumentation writes the CCT heap to a file at program
exit, "from which the CCT can be reconstructed".  We serialize to JSON:
records by index, slots as tagged values, per-record path tables as
sparse maps.  Reconstruction yields :class:`CallRecord` objects wired
exactly as the live tree (including recursion backedges), suitable for
all the analysis/statistics code.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List

from repro.cct.records import CalleeList, CallRecord, ListNode
from repro.instrument.tables import CounterTable, TableKind


class CCTLoadError(ValueError):
    """A CCT dump is missing, corrupt, or not a CCT dump at all.

    Carries the offending ``path`` so callers (the shard runner, the
    CLI) can report *which* checkpoint is damaged instead of leaking a
    raw JSON/KeyError traceback from deep inside reconstruction.
    """

    def __init__(self, path: str, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


def file_digest(path: str) -> str:
    """SHA-256 of a file's bytes — the checkpoint integrity witness."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _slot_json(slot, index_of: Dict[int, int]):
    if slot is None:
        return None
    if isinstance(slot, CalleeList):
        # Each list cell is (callee index, cell heap address): the
        # address is live structure — dropping it would silently
        # zero the indirect-call list state on a round trip.
        return {
            "list": [index_of[id(node.record)] for node in slot.nodes],
            "addrs": [node.addr for node in slot.nodes],
        }
    return {"record": index_of[id(slot)]}


def _table_json(table: CounterTable) -> dict:
    return {
        "name": table.name,
        "capacity": table.capacity,
        "metric_slots": table.metric_slots,
        "kind": table.kind.value,
        "buckets": table.buckets,
        "base": table.base,
        "out_of_range": table.out_of_range,
        "counts": {str(k): v for k, v in table.counts.items()},
        "metrics": {str(k): v for k, v in table.metrics.items()},
    }


def save_cct(runtime, path: str) -> None:
    """Write the CCT (records, metrics, path tables) to ``path``.

    ``runtime`` is anything with ``records``, ``root``, and
    ``heap_bytes()`` — a live :class:`CCTRuntime`, a reloaded
    :class:`LoadedCCT`, or a :class:`~repro.cct.merge.MergedCCT`
    aggregate (which is how shard workers ship their merged trees).

    The write is atomic: the payload goes to a same-directory temp
    file which is then renamed over ``path``, so a reader never sees a
    half-written dump and a crash mid-write leaves any previous
    checkpoint intact.
    """
    index_of = {id(record): i for i, record in enumerate(runtime.records)}
    records = []
    for record in runtime.records:
        records.append(
            {
                "id": record.id,
                "parent": None if record.parent is None else index_of[id(record.parent)],
                "metrics": list(record.metrics),
                "addr": record.addr,
                "slots": [_slot_json(slot, index_of) for slot in record.slots],
                "path_tables": {
                    name: _table_json(table)
                    for name, table in record.path_tables.items()
                },
            }
        )
    payload = {
        "format": "repro-cct-v1",
        "heap_bytes": runtime.heap_bytes(),
        "root": index_of[id(runtime.root)],
        "records": records,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class LoadedCCT:
    """A reconstructed CCT: the root record plus bookkeeping."""

    def __init__(self, root: CallRecord, records: List[CallRecord], heap_bytes: int):
        self.root = root
        self.records = records
        self._heap_bytes = heap_bytes

    def heap_bytes(self) -> int:
        return self._heap_bytes


def load_cct(path: str) -> LoadedCCT:
    """Reconstruct a CCT written by :func:`save_cct`.

    Raises :class:`CCTLoadError` (naming ``path``) when the file is
    missing, truncated, not JSON, or structurally not a CCT dump —
    partial shard checkpoints must surface as a typed, reportable
    condition, not a raw parse traceback.

    Loading is all-or-nothing: every numeric field is validated while
    reconstructing, so a corrupt dump fails *here* rather than lazily
    inside a later merge after the merge target was partially mutated.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CCTLoadError(path, f"cannot read CCT dump ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise CCTLoadError(path, f"truncated or corrupt CCT dump ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-cct-v1":
        raise CCTLoadError(path, "not a repro CCT file")
    try:
        return _reconstruct(path, payload)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise CCTLoadError(
            path, f"malformed CCT dump ({type(exc).__name__}: {exc})"
        ) from exc


def _int(value, what: str) -> int:
    """Eager integer validation for reconstructed values.

    Every numeric field is checked *while loading* so that a corrupt
    dump is a :class:`CCTLoadError` at :func:`load_cct` time, never a
    lazy ``TypeError`` deep inside a later merge after that merge has
    already half-mutated its target — and never a silently wrong
    profile (a string ``"12"`` would otherwise reconstruct metrics as
    a list of characters).
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    return value


def _int_list(values, what: str) -> List[int]:
    if not isinstance(values, list):
        raise ValueError(f"{what} must be a list of integers, got {values!r}")
    return [_int(value, what) for value in values]


def _reconstruct(path: str, payload: dict) -> LoadedCCT:
    raw_records = payload["records"]
    records: List[CallRecord] = []
    for raw in raw_records:
        metrics = _int_list(raw["metrics"], "record metrics")
        record = CallRecord(
            raw["id"], None, len(raw["slots"]), len(metrics), _int(raw["addr"], "addr")
        )
        record.metrics = metrics
        records.append(record)
    for record, raw in zip(records, raw_records):
        if raw["parent"] is not None:
            record.parent = records[raw["parent"]]
        for index, slot in enumerate(raw["slots"]):
            if slot is None:
                continue
            if "record" in slot:
                record.slots[index] = records[slot["record"]]
            else:
                lst = CalleeList()
                # "addrs" is absent in files written before cell
                # addresses were persisted; such cells load as 0.
                addrs = slot.get("addrs") or [0] * len(slot["list"])
                for child_index, addr in zip(slot["list"], addrs):
                    lst.nodes.append(
                        ListNode(records[child_index], _int(addr, "cell addr"))
                    )
                record.slots[index] = lst
        for name, raw_table in raw["path_tables"].items():
            table = CounterTable(
                raw_table["name"],
                -1,
                _int(raw_table.get("base", 0), "table base"),
                _int(raw_table["capacity"], "table capacity"),
                _int(raw_table["metric_slots"], "table metric_slots"),
                TableKind(raw_table["kind"]),
                buckets=_int(raw_table["buckets"], "table buckets"),
            )
            table.counts = {
                int(k): _int(v, f"table {name!r} count")
                for k, v in raw_table["counts"].items()
            }
            table.metrics = {
                int(k): _int_list(v, f"table {name!r} metrics")
                for k, v in raw_table["metrics"].items()
            }
            table.out_of_range = _int(
                raw_table.get("out_of_range", 0), "table out_of_range"
            )
            record.path_tables[name] = table
    return LoadedCCT(
        records[payload["root"]], records, _int(payload["heap_bytes"], "heap_bytes")
    )
