"""repro: flow- and context-sensitive profiling with hardware counters.

A from-scratch reproduction of Ammons, Ball & Larus, *Exploiting
Hardware Performance Counters with Flow and Context Sensitive
Profiling* (PLDI 1997): Ball-Larus path profiling extended with
hardware metrics, the calling context tree (CCT), their combination,
and the full evaluation -- on a simulated UltraSPARC-like machine with
a synthetic SPEC95-like workload suite, because real hardware counters
and the original binaries are out of reach from Python.

Quick start::

    from repro.lang import compile_source
    from repro.tools import PP
    from repro.profiles import classify_paths

    program = compile_source(SOURCE)
    pp = PP()
    run = pp.flow_hw(program)
    report = classify_paths(run.path_profile)
    for hot in report.hot_paths():
        entry = hot.entry
        blocks = run.path_profile.functions[entry.function].decode(entry.path_sum)
        print(entry.function, entry.misses, "->", blocks.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.machine.config import MachineConfig
from repro.machine.counters import Event
from repro.machine.vm import Machine, RunResult
from repro.tools.pp import PP, ProfileRun

__all__ = [
    "Event",
    "Machine",
    "MachineConfig",
    "PP",
    "ProfileRun",
    "RunResult",
    "__version__",
]
