"""Plain-text tables in the style of the paper's results section."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Align a list of row dicts into a monospaced table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            text = _format_cell(value)
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[column]) for column, cell in zip(columns, cells))
        )
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:.3g}"
        return f"{value:.2f}"
    if isinstance(value, int) and abs(value) >= 10_000_000:
        return f"{value:.2e}"
    return str(value)


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
