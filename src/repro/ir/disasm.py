"""Disassembler: renders IR back to the assembly syntax of :mod:`repro.ir.asm`.

Instrumentation pseudo-instructions have no assembler syntax (they are
only ever machine-generated); they print as ``!mnemonic`` lines so a
dump of an instrumented function is still readable.
"""

from __future__ import annotations

from typing import List, Union

from repro.ir.function import Block, Function, Program
from repro.ir.instructions import Imm, Instruction, Kind, Operand


def _operand(value: Union[Operand, None]) -> str:
    if value is None:
        return ""
    if isinstance(value, Imm):
        return repr(value.value)
    return f"r{value}"


def format_instruction(instr: Instruction) -> str:
    kind = instr.kind
    if kind == Kind.CONST:
        return f"const r{instr.dst}, {instr.value!r}"
    if kind == Kind.MOVE:
        return f"mov r{instr.dst}, r{instr.src}"
    if kind in (Kind.BINOP, Kind.FBINOP):
        return f"{instr.op} r{instr.dst}, r{instr.a}, {_operand(instr.b)}"
    if kind == Kind.LOAD:
        return f"load r{instr.dst}, [r{instr.base}+{instr.offset}]"
    if kind == Kind.STORE:
        return f"store {_operand(instr.src)}, [r{instr.base}+{instr.offset}]"
    if kind == Kind.ALLOC:
        return f"alloc r{instr.dst}, {_operand(instr.size)}"
    if kind == Kind.BR:
        return f"br {instr.target}"
    if kind == Kind.CBR:
        return f"cbr r{instr.cond}, {instr.then}, {instr.els}"
    if kind == Kind.CALL:
        args = ", ".join(_operand(a) for a in instr.args)
        prefix = f"call r{instr.dst}, " if instr.dst is not None else "call "
        return f"{prefix}{instr.callee}({args})"
    if kind == Kind.ICALL:
        args = ", ".join(_operand(a) for a in instr.args)
        prefix = f"icall r{instr.dst}, " if instr.dst is not None else "icall "
        return f"{prefix}*r{instr.func}({args})"
    if kind == Kind.RET:
        if instr.value is None:
            return "ret"
        return f"ret {_operand(instr.value)}"
    if kind == Kind.SETJMP:
        return f"setjmp r{instr.dst}, r{instr.env}"
    if kind == Kind.LONGJMP:
        return f"longjmp r{instr.env}, {_operand(instr.value)}"
    if kind == Kind.FRAME_LOAD:
        return f"!frame.load r{instr.dst}, slot{instr.slot}"
    if kind == Kind.FRAME_STORE:
        return f"!frame.store r{instr.src}, slot{instr.slot}"
    # --- instrumentation pseudo-instructions ---
    if kind == Kind.PATH_RESET:
        return f"!path.reset r{instr.reg}"
    if kind == Kind.PATH_ADD:
        return f"!path.add r{instr.reg}, {instr.value}"
    if kind == Kind.PATH_COMMIT:
        tail = "" if instr.reset_to is None else f", reset={instr.reset_to}"
        return f"!path.commit r{instr.reg}+{instr.end} -> table{instr.table}{tail}"
    if kind == Kind.HWC_ZERO:
        return "!hwc.zero"
    if kind == Kind.HWC_ACCUM:
        tail = "" if instr.reset_to is None else f", reset={instr.reset_to}"
        rz = "" if instr.rezero else ", norezero"
        return f"!hwc.accum r{instr.reg}+{instr.end} -> table{instr.table}{rz}{tail}"
    if kind == Kind.HWC_SAVE:
        return "!hwc.save"
    if kind == Kind.HWC_RESTORE:
        return "!hwc.restore"
    if kind == Kind.EDGE_COUNT:
        return f"!edge.count {instr.edge} -> table{instr.table}"
    if kind == Kind.CCT_ENTER:
        return f"!cct.enter {instr.proc}, slots={instr.nslots}"
    if kind == Kind.CCT_CALL:
        return f"!cct.call slot={instr.slot}"
    if kind == Kind.CCT_EXIT:
        return "!cct.exit"
    if kind == Kind.CCT_PROBE:
        return "!cct.probe"
    raise ValueError(f"cannot format instruction kind {kind!r}")


def format_block(block: Block, indent: str = "    ") -> str:
    lines: List[str] = [f"{block.name}:"]
    lines.extend(indent + format_instruction(i) for i in block.instrs)
    return "\n".join(lines)


def format_function(function: Function) -> str:
    header = f"func {function.name}({function.num_params}) regs={function.num_regs} {{"
    body = "\n".join(format_block(b) for b in function.blocks)
    return f"{header}\n{body}\n}}"


def format_program(program: Program) -> str:
    header = f"program entry={program.entry} globals={program.globals_size}"
    functions = "\n\n".join(
        format_function(f) for f in program.functions.values()
    )
    return f"{header}\n\n{functions}\n"
