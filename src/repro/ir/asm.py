"""A textual assembler for the IR.

The examples and several tests author programs in assembly rather than
through the builder API.  Grammar (``#`` starts a line comment)::

    program  := header? func*
    header   := "program" ("entry" "=" IDENT)? ("globals" "=" INT)?
    func     := "func" IDENT "(" INT ")" ("regs" "=" INT)? "{" block+ "}"
    block    := IDENT ":" instr*
    instr    := mnemonic operands

Operands: ``rN`` registers, integer/float literals (immediates),
``[rN+off]`` memory addresses, bare identifiers (block or function
names).  Calls look like ``call r3, foo(r1, 2)`` / ``call foo(r1)`` and
indirect calls ``icall r3, *r5(r1, 2)``.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional, Union

from repro.ir.function import Block, Function, Program, validate_program
from repro.ir.instructions import (
    BINARY_OPS,
    FLOAT_OPS,
    Alloc,
    Binop,
    Br,
    Call,
    Cbr,
    Const,
    FBinop,
    ICall,
    Imm,
    Load,
    Longjmp,
    Move,
    Operand,
    Ret,
    Setjmp,
    Store,
)


class AsmError(Exception):
    """Raised on any lexical or syntactic error, with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Token(NamedTuple):
    kind: str
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<float>-?\d+\.\d+(?:[eE][-+]?\d+)?)
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[(){}\[\]:,=*+])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[Token]:
    line = 1
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AsmError(f"unexpected character {text[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup
        if kind == "newline":
            line += 1
            yield Token("newline", "\n", line - 1)
        elif kind not in ("ws", "comment"):
            yield Token(kind, match.group(), line)
    yield Token("eof", "", line)


class _Parser:
    def __init__(self, text: str):
        self.tokens: List[Token] = list(_tokenize(text))
        self.pos = 0

    # -- token primitives ----------------------------------------------------

    def peek(self, skip_newlines: bool = True) -> Token:
        pos = self.pos
        while skip_newlines and self.tokens[pos].kind == "newline":
            pos += 1
        return self.tokens[pos]

    def next(self, skip_newlines: bool = True) -> Token:
        while skip_newlines and self.tokens[self.pos].kind == "newline":
            self.pos += 1
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise AsmError(f"expected {want!r}, found {token.text!r}", token.line)
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    # -- operand parsing -------------------------------------------------------

    def parse_reg(self) -> int:
        token = self.expect("ident")
        if not re.fullmatch(r"r\d+", token.text):
            raise AsmError(f"expected register, found {token.text!r}", token.line)
        return int(token.text[1:])

    def parse_operand(self) -> Operand:
        token = self.peek()
        if token.kind == "int":
            self.next()
            return Imm(int(token.text))
        if token.kind == "float":
            self.next()
            return Imm(float(token.text))
        return self.parse_reg()

    def parse_mem(self) -> tuple:
        """``[rN]`` or ``[rN+off]`` or ``[rN+-off]`` -> (base, offset)."""
        self.expect("punct", "[")
        base = self.parse_reg()
        offset = 0
        if self.accept("punct", "+"):
            token = self.next()
            if token.kind != "int":
                raise AsmError(f"expected integer offset, found {token.text!r}", token.line)
            offset = int(token.text)
        self.expect("punct", "]")
        return base, offset

    def parse_args(self) -> List[Operand]:
        self.expect("punct", "(")
        args: List[Operand] = []
        if not self.accept("punct", ")"):
            while True:
                args.append(self.parse_operand())
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        return args

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> Program:
        entry = "main"
        globals_size = 0
        if self.peek().kind == "ident" and self.peek().text == "program":
            self.next()
            while True:
                token = self.peek()
                if token.kind == "ident" and token.text == "entry":
                    self.next()
                    self.expect("punct", "=")
                    entry = self.expect("ident").text
                elif token.kind == "ident" and token.text == "globals":
                    self.next()
                    self.expect("punct", "=")
                    globals_size = int(self.expect("int").text)
                else:
                    break
        program = Program(entry=entry, globals_size=globals_size)
        while self.peek().kind != "eof":
            program.add_function(self.parse_function(program))
        program.assign_all_call_sites()
        return program

    def parse_function(self, program: Program) -> Function:
        self.expect("ident", "func")
        name = self.expect("ident").text
        self.expect("punct", "(")
        num_params = int(self.expect("int").text)
        self.expect("punct", ")")
        num_regs = 32
        if self.accept("ident", "regs"):
            self.expect("punct", "=")
            num_regs = int(self.expect("int").text)
        self.expect("punct", "{")
        function = Function(name, num_params=num_params, num_regs=num_regs)
        while not self.accept("punct", "}"):
            function.add_block(self.parse_block(program))
        return function

    def parse_block(self, program: Program) -> Block:
        label = self.expect("ident")
        self.expect("punct", ":")
        block = Block(label.text)
        while True:
            token = self.peek()
            if token.kind == "eof":
                break
            if token.kind == "punct" and token.text == "}":
                break
            # A label is an ident followed by ':'
            if token.kind == "ident":
                after = self._token_after(token)
                if after is not None and after.kind == "punct" and after.text == ":":
                    break
            block.instrs.append(self.parse_instruction(program))
        return block

    def _token_after(self, token: Token) -> Optional[Token]:
        pos = self.pos
        while self.tokens[pos].kind == "newline":
            pos += 1
        assert self.tokens[pos] is token or self.tokens[pos] == token
        pos += 1
        while self.tokens[pos].kind == "newline":
            pos += 1
        if self.tokens[pos].kind == "eof":
            return None
        return self.tokens[pos]

    def parse_instruction(self, program: Program):
        token = self.expect("ident")
        mnemonic = token.text
        if mnemonic == "const":
            dst = self.parse_reg()
            self.expect("punct", ",")
            value_token = self.next()
            if value_token.kind == "int":
                return Const(dst, int(value_token.text))
            if value_token.kind == "float":
                return Const(dst, float(value_token.text))
            raise AsmError(f"expected literal, found {value_token.text!r}", value_token.line)
        if mnemonic == "mov":
            dst = self.parse_reg()
            self.expect("punct", ",")
            src = self.parse_reg()
            return Move(dst, src)
        if mnemonic in BINARY_OPS:
            dst = self.parse_reg()
            self.expect("punct", ",")
            a = self.parse_reg()
            self.expect("punct", ",")
            b = self.parse_operand()
            return Binop(mnemonic, dst, a, b)
        if mnemonic in FLOAT_OPS:
            dst = self.parse_reg()
            self.expect("punct", ",")
            a = self.parse_reg()
            self.expect("punct", ",")
            b = self.parse_operand()
            return FBinop(mnemonic, dst, a, b)
        if mnemonic == "load":
            dst = self.parse_reg()
            self.expect("punct", ",")
            base, offset = self.parse_mem()
            return Load(dst, base, offset)
        if mnemonic == "store":
            src = self.parse_operand()
            self.expect("punct", ",")
            base, offset = self.parse_mem()
            return Store(src, base, offset)
        if mnemonic == "alloc":
            dst = self.parse_reg()
            self.expect("punct", ",")
            size = self.parse_operand()
            return Alloc(dst, size)
        if mnemonic == "br":
            return Br(self.expect("ident").text)
        if mnemonic == "cbr":
            cond = self.parse_reg()
            self.expect("punct", ",")
            then = self.expect("ident").text
            self.expect("punct", ",")
            els = self.expect("ident").text
            return Cbr(cond, then, els)
        if mnemonic == "call":
            return self._parse_call(direct=True)
        if mnemonic == "icall":
            return self._parse_call(direct=False)
        if mnemonic == "ret":
            nxt = self.peek(skip_newlines=False)
            if nxt.kind in ("int", "float"):
                self.next()
                value: Union[Operand, None] = Imm(
                    int(nxt.text) if nxt.kind == "int" else float(nxt.text)
                )
            elif nxt.kind == "ident" and re.fullmatch(r"r\d+", nxt.text):
                self.next()
                value = int(nxt.text[1:])
            else:
                value = None
            return Ret(value)
        if mnemonic == "setjmp":
            dst = self.parse_reg()
            self.expect("punct", ",")
            env = self.parse_reg()
            return Setjmp(dst, env)
        if mnemonic == "longjmp":
            env = self.parse_reg()
            self.expect("punct", ",")
            value = self.parse_operand()
            return Longjmp(env, value)
        raise AsmError(f"unknown mnemonic {mnemonic!r}", token.line)

    def _parse_call(self, direct: bool):
        # Forms: call foo(...)            -- no result
        #        call r3, foo(...)        -- result into r3
        #        icall *r5(...) / icall r3, *r5(...)
        dst: Optional[int] = None
        token = self.peek()
        if direct:
            name_token = self.expect("ident")
            if self.peek().kind == "punct" and self.peek().text == ",":
                # it was actually the dst register
                if not re.fullmatch(r"r\d+", name_token.text):
                    raise AsmError(
                        f"expected register or function, found {name_token.text!r}",
                        name_token.line,
                    )
                dst = int(name_token.text[1:])
                self.expect("punct", ",")
                name_token = self.expect("ident")
            args = self.parse_args()
            return Call(name_token.text, args, dst)
        # indirect
        if token.kind == "ident" and re.fullmatch(r"r\d+", token.text):
            # Could be dst or the function register; disambiguate on '*'
            first = self.next()
            if self.accept("punct", ","):
                dst = int(first.text[1:])
                self.expect("punct", "*")
                func = self.parse_reg()
            else:
                raise AsmError("indirect call target must be written *rN", first.line)
        else:
            self.expect("punct", "*")
            func = self.parse_reg()
        args = self.parse_args()
        return ICall(func, args, dst)


def parse_program(text: str, validate: bool = True) -> Program:
    """Parse assembly text into a :class:`Program`."""
    program = _Parser(text).parse_program()
    if validate:
        validate_program(program)
    return program
