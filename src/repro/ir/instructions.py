"""Instruction set of the register-machine IR.

Design notes
------------

* Registers are plain ``int`` indices into a per-frame register file.
  Immediates are wrapped in :class:`Imm` so an operand is unambiguously
  either a register number or a literal value.
* Every instruction carries an integer :attr:`~Instruction.kind` drawn
  from :class:`Kind` so the interpreter can dispatch through a table
  instead of a chain of ``isinstance`` checks.
* Instrumentation pseudo-instructions (``Path*``, ``Hwc*``, ``Cct*``,
  ``EdgeCount``) are first-class IR instructions.  They are only ever
  created by the passes in :mod:`repro.instrument`, but they execute on
  the simulated machine, occupy instruction-cache space, touch the data
  cache, and are charged a realistic instruction cost
  (:attr:`Instruction.icost`).  That is what makes the perturbation
  study (Table 2 of the paper) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Union


class Kind(IntEnum):
    """Dense instruction tags for table dispatch in the interpreter."""

    CONST = 0
    MOVE = 1
    BINOP = 2
    FBINOP = 3
    LOAD = 4
    STORE = 5
    ALLOC = 6
    BR = 7
    CBR = 8
    CALL = 9
    ICALL = 10
    RET = 11
    SETJMP = 12
    LONGJMP = 13
    # --- instrumentation pseudo-instructions ---
    PATH_RESET = 14
    PATH_ADD = 15
    PATH_COMMIT = 16
    HWC_ZERO = 17
    HWC_ACCUM = 18
    HWC_SAVE = 19
    HWC_RESTORE = 20
    EDGE_COUNT = 21
    CCT_ENTER = 22
    CCT_CALL = 23
    CCT_EXIT = 24
    FRAME_LOAD = 25
    FRAME_STORE = 26
    CCT_PROBE = 27
    K_PATH_ADD = 28
    K_HWC_CYCLE = 29
    K_HWC_EXIT = 30


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate operand; distinguishes literals from register indices."""

    value: Union[int, float]

    def __repr__(self) -> str:
        return f"Imm({self.value!r})"


Operand = Union[int, Imm]

#: Integer binary operators.  Comparison operators produce 0/1.
BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: _int_div(a, b),
    "mod": lambda a, b: _int_mod(a, b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "min": min,
    "max": max,
}

#: Floating-point binary operators (longer latency on the machine).
FLOAT_OPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b != 0.0 else 0.0,
}


def _int_div(a: int, b: int) -> int:
    """C-style truncating division; division by zero yields zero.

    Workload generators may synthesize divisions whose operands are data
    dependent; trapping would make whole-program runs fragile, so the
    machine defines x/0 == 0 (as several soft-float ABIs do).
    """
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _int_div(a, b) * b


class Instruction:
    """Base class for all IR instructions.

    :attr:`icost` is how many machine instructions this IR operation
    represents.  Ordinary operations cost 1.  Instrumentation
    pseudo-instructions bundle several machine instructions (the paper
    quotes e.g. thirteen or more instructions for the hardware-counter
    accumulate sequence) and are charged accordingly.
    """

    __slots__ = ()
    kind: Kind
    icost: int = 1

    def operands(self) -> tuple:
        """Register numbers read by this instruction (for analyses)."""
        return ()

    def defined(self) -> tuple:
        """Register numbers written by this instruction."""
        return ()


@dataclass(slots=True)
class Const(Instruction):
    """``dst = value`` — load an integer or float literal."""

    dst: int
    value: Union[int, float]

    kind = Kind.CONST

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class Move(Instruction):
    """``dst = src`` — register copy."""

    dst: int
    src: int

    kind = Kind.MOVE

    def operands(self) -> tuple:
        return (self.src,)

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class Binop(Instruction):
    """``dst = a <op> b`` over integers; ``b`` may be an immediate."""

    op: str
    dst: int
    a: int
    b: Operand

    kind = Kind.BINOP

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown integer op {self.op!r}")

    def operands(self) -> tuple:
        if isinstance(self.b, Imm):
            return (self.a,)
        return (self.a, self.b)

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class FBinop(Instruction):
    """``dst = a <op> b`` over floats; executes on the FP unit."""

    op: str
    dst: int
    a: int
    b: Operand

    kind = Kind.FBINOP

    def __post_init__(self) -> None:
        if self.op not in FLOAT_OPS:
            raise ValueError(f"unknown float op {self.op!r}")

    def operands(self) -> tuple:
        if isinstance(self.b, Imm):
            return (self.a,)
        return (self.a, self.b)

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class Load(Instruction):
    """``dst = memory[regs[base] + offset]`` — goes through the D-cache."""

    dst: int
    base: int
    offset: int = 0

    kind = Kind.LOAD

    def operands(self) -> tuple:
        return (self.base,)

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class Store(Instruction):
    """``memory[regs[base] + offset] = src`` — D-cache plus store buffer."""

    src: Operand
    base: int
    offset: int = 0

    kind = Kind.STORE

    def operands(self) -> tuple:
        if isinstance(self.src, Imm):
            return (self.base,)
        return (self.src, self.base)


@dataclass(slots=True)
class Alloc(Instruction):
    """``dst = heap_allocate(size_words)`` — bump allocation."""

    dst: int
    size: Operand

    kind = Kind.ALLOC

    def operands(self) -> tuple:
        if isinstance(self.size, Imm):
            return ()
        return (self.size,)

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class Br(Instruction):
    """Unconditional branch to a block (by name)."""

    target: str

    kind = Kind.BR


@dataclass(slots=True)
class Cbr(Instruction):
    """Conditional branch: nonzero ``cond`` goes to ``then``, else ``els``.

    Conditional branches consult the branch predictor on the machine.
    """

    cond: int
    then: str
    els: str

    kind = Kind.CBR

    def operands(self) -> tuple:
        return (self.cond,)


@dataclass(slots=True)
class Call(Instruction):
    """Direct call; arguments are copied into the callee's r0..rN-1.

    ``site`` is the call-site index within the caller, assigned by
    :func:`repro.ir.function.Function.assign_call_sites`; the CCT runtime
    keys callee slots by it.
    """

    callee: str
    args: list
    dst: Union[int, None] = None
    site: int = -1

    kind = Kind.CALL

    def operands(self) -> tuple:
        return tuple(a for a in self.args if not isinstance(a, Imm))

    def defined(self) -> tuple:
        return () if self.dst is None else (self.dst,)


@dataclass(slots=True)
class ICall(Instruction):
    """Indirect call through a function index held in ``func`` register."""

    func: int
    args: list
    dst: Union[int, None] = None
    site: int = -1

    kind = Kind.ICALL

    def operands(self) -> tuple:
        return (self.func, *(a for a in self.args if not isinstance(a, Imm)))

    def defined(self) -> tuple:
        return () if self.dst is None else (self.dst,)


@dataclass(slots=True)
class Ret(Instruction):
    """Return, optionally with a value."""

    value: Union[Operand, None] = None

    kind = Kind.RET

    def operands(self) -> tuple:
        if self.value is None or isinstance(self.value, Imm):
            return ()
        return (self.value,)


@dataclass(slots=True)
class Setjmp(Instruction):
    """``dst = setjmp()`` — captures the current continuation.

    Returns 0 on the direct call; a later :class:`Longjmp` resumes here
    with the longjmp value (coerced to nonzero).  Used to exercise the
    CCT's handling of non-local returns (paper §4.3).
    """

    dst: int
    env: int

    kind = Kind.SETJMP

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class Longjmp(Instruction):
    """``longjmp(env, value)`` — unwind frames back to the setjmp point."""

    env: int
    value: Operand

    kind = Kind.LONGJMP

    def operands(self) -> tuple:
        if isinstance(self.value, Imm):
            return (self.env,)
        return (self.env, self.value)


@dataclass(slots=True)
class FrameLoad(Instruction):
    """``dst = frame_memory[slot]`` — reload a spilled register.

    The executable editor inserts these around uses of a spilled
    register (paper §3.2: EEL spills a register to the stack when a
    procedure has no free register, and the extra loads/stores perturb
    the metrics).  The access goes through the D-cache at the frame's
    stack address.
    """

    dst: int
    slot: int

    kind = Kind.FRAME_LOAD

    def defined(self) -> tuple:
        return (self.dst,)


@dataclass(slots=True)
class FrameStore(Instruction):
    """``frame_memory[slot] = src`` — spill a register to the stack."""

    src: int
    slot: int

    kind = Kind.FRAME_STORE

    def operands(self) -> tuple:
        return (self.src,)


# ---------------------------------------------------------------------------
# Instrumentation pseudo-instructions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PathReset(Instruction):
    """``r = 0`` at procedure ENTRY (Ball–Larus path register init)."""

    reg: int

    kind = Kind.PATH_RESET
    icost = 1

    def defined(self) -> tuple:
        return (self.reg,)


@dataclass(slots=True)
class PathAdd(Instruction):
    """``r += value`` along a CFG edge (the Val(e) increment)."""

    reg: int
    value: int

    kind = Kind.PATH_ADD
    icost = 1

    def operands(self) -> tuple:
        return (self.reg,)

    def defined(self) -> tuple:
        return (self.reg,)


@dataclass(slots=True)
class PathCommit(Instruction):
    """``count[r + end] += 1`` then optionally ``r = start``.

    ``table`` names a counter table registered with the profiling
    runtime; the increment is a real load/store pair into the profiling
    memory region, so it occupies D-cache lines.  ``reset_to`` is the
    START value of a backedge's pseudo edge, or ``None`` at EXIT.
    """

    reg: int
    end: int
    table: int
    reset_to: Union[int, None] = None

    kind = Kind.PATH_COMMIT
    # add, address arithmetic, load, add, store (+ optional reset move)
    icost = 5

    def operands(self) -> tuple:
        return (self.reg,)

    def defined(self) -> tuple:
        return (self.reg,)


@dataclass(slots=True)
class HwcZero(Instruction):
    """Zero the PIC hardware counters (write + read-after-write).

    On the UltraSPARC the write must be followed by a read to guarantee
    completion before subsequent instructions (paper §3.1); the machine
    models the same and the cost reflects both instructions.
    """

    kind = Kind.HWC_ZERO
    icost = 2


@dataclass(slots=True)
class HwcAccum(Instruction):
    """Read the PIC counters and accumulate into a path's metric slots.

    Implements the end-of-path sequence of Figure 3: read the 64-bit
    counter register, extract the two 32-bit event counts, and add each
    (plus a frequency increment) into 64-bit accumulators indexed by the
    path sum.  The paper reports this takes thirteen or more
    instructions; we charge 13 plus the memory traffic of the
    read-modify-write of three 8-byte accumulator slots.

    ``rezero`` makes the sequence also clear the counters, which is how
    backedge instrumentation chains intervals together.
    """

    reg: int
    end: int
    table: int
    rezero: bool = True
    reset_to: Union[int, None] = None

    kind = Kind.HWC_ACCUM
    icost = 13

    def operands(self) -> tuple:
        return (self.reg,)

    def defined(self) -> tuple:
        return (self.reg,)


@dataclass(slots=True)
class HwcSave(Instruction):
    """Save the live PIC counter values to the frame (around calls)."""

    kind = Kind.HWC_SAVE
    icost = 3


@dataclass(slots=True)
class HwcRestore(Instruction):
    """Restore saved PIC counter values (write + read-after-write)."""

    kind = Kind.HWC_RESTORE
    icost = 4


@dataclass(slots=True)
class EdgeCount(Instruction):
    """``edge_counter[edge] += 1`` — the qpt-style edge-profiling baseline."""

    edge: int
    table: int

    kind = Kind.EDGE_COUNT
    # address arithmetic, load, add, store
    icost = 4


@dataclass(slots=True)
class CctEnter(Instruction):
    """CCT procedure-entry hook: find or build this context's call record.

    The real cost is dynamic (fast path: one tagged load; slow path:
    ancestor walk plus record allocation); the CCT runtime reports the
    instructions actually executed and performs the corresponding
    simulated memory accesses.  ``icost`` here is only the static floor.
    """

    proc: str
    nslots: int

    kind = Kind.CCT_ENTER
    icost = 4


@dataclass(slots=True)
class CctCall(Instruction):
    """Before a call: gCSP = lCRP + slot offset for this call site."""

    slot: int

    kind = Kind.CCT_CALL
    icost = 2


@dataclass(slots=True)
class CctExit(Instruction):
    """CCT procedure-exit hook: restore the caller's gCSP from the stack."""

    kind = Kind.CCT_EXIT
    icost = 2


@dataclass(slots=True)
class CctProbe(Instruction):
    """Mid-procedure counter read on a loop backedge (paper §4.3).

    Accumulates the interval since procedure entry (or the previous
    probe) into the current call record and restarts the interval,
    bounding the interval length so 32-bit counters cannot wrap and
    capturing partial metrics for procedures that never return
    normally.
    """

    kind = Kind.CCT_PROBE
    icost = 6


@dataclass(slots=True)
class KPathAdd(Instruction):
    """``r += values[r % k]`` — per-layer Val(e) increment for k-iteration paths.

    The k-iteration path register packs ``path_sum * k + layer`` into one
    scavenged register, where ``layer`` counts backedge crossings since the
    last commit.  ``values`` holds one increment per layer, each pre-scaled
    by ``k`` so the packed layer component is preserved.  Edges whose
    increment is uniform across layers are lowered to a plain
    :class:`PathAdd` instead; this instruction pays one extra machine op
    for the layer-indexed table lookup.
    """

    reg: int
    k: int
    values: tuple

    kind = Kind.K_PATH_ADD
    icost = 2

    def operands(self) -> tuple:
        return (self.reg,)

    def defined(self) -> tuple:
        return (self.reg,)


@dataclass(slots=True)
class KHwcCycle(Instruction):
    """Backedge probe for k-iteration paths: cross a layer or commit.

    With packed register ``r = path_sum * k + layer``: when
    ``layer < k - 1`` the backedge continues the current path into the
    next layer (``r += cross[layer]``, where each cross value is
    pre-scaled as ``raw * k + 1`` to fold in the layer bump); when
    ``layer == k - 1`` it commits like :class:`HwcAccum` with
    ``index = path_sum + end``, rezeroes the counters, and resets
    ``r = start`` (pre-scaled ``raw_start * k``, layer 0).  The commit arm
    is the paper's Figure 3 sequence plus the layer test, hence one extra
    machine op over :class:`HwcAccum`.
    """

    reg: int
    k: int
    cross: tuple
    end: int
    start: int
    table: int

    kind = Kind.K_HWC_CYCLE
    icost = 14

    def operands(self) -> tuple:
        return (self.reg,)

    def defined(self) -> tuple:
        return (self.reg,)


@dataclass(slots=True)
class KHwcExit(Instruction):
    """Exit commit for k-iteration paths (no rezero, no reset).

    Unpacks ``r = path_sum * k + layer`` and accumulates into
    ``index = path_sum + values[layer]`` where ``values`` holds the raw
    per-layer exit edge value.  Unlike :class:`HwcAccum` the end value is
    layer-dependent, so the exit commit cannot collapse to the base
    instruction for ``k > 1``.
    """

    reg: int
    k: int
    values: tuple
    table: int

    kind = Kind.K_HWC_EXIT
    icost = 14

    def operands(self) -> tuple:
        return (self.reg,)


_TERMINATORS = frozenset({Kind.BR, Kind.CBR, Kind.RET, Kind.LONGJMP})


def is_terminator(instr: Instruction) -> bool:
    """True if ``instr`` must appear (only) as the last instruction of a block."""
    return instr.kind in _TERMINATORS
