"""Convenience builders for constructing IR programmatically.

The workload generators and tests construct thousands of functions; the
builder keeps that code readable while enforcing block discipline
(every block sealed with exactly one terminator).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.ir.function import Block, Function, IRValidationError, Program, validate_program
from repro.ir.instructions import (
    Alloc,
    Binop,
    Br,
    Call,
    Cbr,
    Const,
    FBinop,
    ICall,
    Imm,
    Instruction,
    Load,
    Longjmp,
    Move,
    Operand,
    Ret,
    Setjmp,
    Store,
    is_terminator,
)


class FunctionBuilder:
    """Builds one function block by block.

    Usage::

        fb = FunctionBuilder("f", num_params=1)
        fb.block("entry")
        t = fb.binop("add", fb.reg(), 0, Imm(1))
        fb.ret(t)
        function = fb.finish()
    """

    def __init__(self, name: str, num_params: int = 0, num_regs: int = 32):
        self.function = Function(name, num_params=num_params, num_regs=num_regs)
        self._current: Optional[Block] = None
        self._next_reg = num_params

    # -- registers ---------------------------------------------------------

    def reg(self) -> int:
        """Allocate a fresh register index."""
        if self._next_reg >= self.function.num_regs:
            raise IRValidationError(
                f"function {self.function.name!r}: out of registers "
                f"({self.function.num_regs})"
            )
        reg = self._next_reg
        self._next_reg += 1
        return reg

    # -- blocks ------------------------------------------------------------

    def block(self, name: str) -> str:
        """Start (and switch to) a new block; returns its name."""
        if self._current is not None and (
            not self._current.instrs or not is_terminator(self._current.instrs[-1])
        ):
            raise IRValidationError(
                f"block {self._current.name!r} not terminated before "
                f"starting {name!r}"
            )
        self._current = self.function.add_block(Block(name))
        return name

    def switch_to(self, name: str) -> None:
        """Resume emitting into an existing (unterminated) block."""
        self._current = self.function.block(name)

    def emit(self, instr: Instruction) -> Instruction:
        if self._current is None:
            raise IRValidationError("no current block; call block() first")
        if self._current.instrs and is_terminator(self._current.instrs[-1]):
            raise IRValidationError(
                f"block {self._current.name!r} already terminated"
            )
        self._current.instrs.append(instr)
        return instr

    # -- instruction helpers -------------------------------------------------

    def const(self, value: Union[int, float], dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.reg()
        self.emit(Const(dst, value))
        return dst

    def move(self, dst: int, src: int) -> int:
        self.emit(Move(dst, src))
        return dst

    def binop(self, op: str, a: int, b: Operand, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.reg()
        self.emit(Binop(op, dst, a, b))
        return dst

    def fbinop(self, op: str, a: int, b: Operand, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.reg()
        self.emit(FBinop(op, dst, a, b))
        return dst

    def load(self, base: int, offset: int = 0, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.reg()
        self.emit(Load(dst, base, offset))
        return dst

    def store(self, src: Operand, base: int, offset: int = 0) -> None:
        self.emit(Store(src, base, offset))

    def alloc(self, size: Operand, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.reg()
        self.emit(Alloc(dst, size))
        return dst

    def br(self, target: str) -> None:
        self.emit(Br(target))

    def cbr(self, cond: int, then: str, els: str) -> None:
        self.emit(Cbr(cond, then, els))

    def call(
        self,
        callee: str,
        args: Optional[List[Operand]] = None,
        dst: Optional[int] = None,
        want_result: bool = True,
    ) -> Optional[int]:
        if want_result and dst is None:
            dst = self.reg()
        self.emit(Call(callee, list(args or []), dst))
        return dst

    def icall(
        self,
        func: int,
        args: Optional[List[Operand]] = None,
        dst: Optional[int] = None,
        want_result: bool = True,
    ) -> Optional[int]:
        if want_result and dst is None:
            dst = self.reg()
        self.emit(ICall(func, list(args or []), dst))
        return dst

    def ret(self, value: Union[Operand, None] = None) -> None:
        self.emit(Ret(value))

    def setjmp(self, env: int, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.reg()
        self.emit(Setjmp(dst, env))
        return dst

    def longjmp(self, env: int, value: Operand) -> None:
        self.emit(Longjmp(env, value))

    # -- finish --------------------------------------------------------------

    def finish(self) -> Function:
        if self._current is not None and (
            not self._current.instrs or not is_terminator(self._current.instrs[-1])
        ):
            raise IRValidationError(
                f"final block {self._current.name!r} is not terminated"
            )
        self.function.assign_call_sites()
        return self.function


class ProgramBuilder:
    """Builds a whole program and validates it on finish."""

    def __init__(self, entry: str = "main", globals_size: int = 0):
        self.program = Program(entry=entry, globals_size=globals_size)

    def function(self, name: str, num_params: int = 0, num_regs: int = 32) -> FunctionBuilder:
        builder = FunctionBuilder(name, num_params=num_params, num_regs=num_regs)
        return builder

    def add(self, builder_or_function: Union[FunctionBuilder, "Function"]) -> None:
        if isinstance(builder_or_function, FunctionBuilder):
            self.program.add_function(builder_or_function.finish())
        else:
            self.program.add_function(builder_or_function)

    def finish(self, validate: bool = True) -> Program:
        if validate:
            validate_program(self.program)
        return self.program
