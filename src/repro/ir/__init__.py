"""Intermediate representation for the profiling substrate.

The paper instruments SPARC executables with EEL.  Our substitute is a
small register-machine IR: programs are collections of functions, each a
list of basic blocks over a finite register file.  Instrumentation passes
splice extra instructions into this IR exactly as EEL splices native
code, and the machine simulator (:mod:`repro.machine`) executes it while
maintaining hardware performance counters.
"""

from repro.ir.instructions import (
    BINARY_OPS,
    FLOAT_OPS,
    Alloc,
    Binop,
    Br,
    Call,
    Cbr,
    CctCall,
    CctEnter,
    CctExit,
    Const,
    EdgeCount,
    FBinop,
    HwcAccum,
    HwcRestore,
    HwcSave,
    HwcZero,
    ICall,
    Imm,
    Instruction,
    Kind,
    Load,
    Longjmp,
    Move,
    PathAdd,
    PathCommit,
    PathReset,
    Ret,
    Setjmp,
    Store,
    is_terminator,
)
from repro.ir.function import (
    Block,
    Function,
    IRValidationError,
    Program,
    validate_function,
    validate_program,
)
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.asm import AsmError, parse_program
from repro.ir.disasm import format_block, format_function, format_instruction, format_program

__all__ = [
    "Alloc",
    "AsmError",
    "BINARY_OPS",
    "Binop",
    "Block",
    "Br",
    "Call",
    "Cbr",
    "CctCall",
    "CctEnter",
    "CctExit",
    "Const",
    "EdgeCount",
    "FBinop",
    "FLOAT_OPS",
    "Function",
    "FunctionBuilder",
    "HwcAccum",
    "HwcRestore",
    "HwcSave",
    "HwcZero",
    "ICall",
    "IRValidationError",
    "Imm",
    "Instruction",
    "Kind",
    "Load",
    "Longjmp",
    "Move",
    "PathAdd",
    "PathCommit",
    "PathReset",
    "Program",
    "ProgramBuilder",
    "Ret",
    "Setjmp",
    "Store",
    "format_block",
    "format_function",
    "format_instruction",
    "format_program",
    "is_terminator",
    "parse_program",
    "validate_function",
    "validate_program",
]
