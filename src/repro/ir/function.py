"""Functions, basic blocks, and whole programs.

A :class:`Function` is an ordered list of named basic blocks over a
finite register file; the first block is the entry.  A
:class:`Program` maps function names to functions and carries the pieces
of link-time state the machine needs: the global data size, the function
table used by indirect calls, and the entry-point name.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Union

from repro.ir.instructions import (
    Call,
    ICall,
    Instruction,
    Kind,
    is_terminator,
)


class IRValidationError(Exception):
    """Raised when a function or program is structurally malformed."""


#: Monotonic source of block edit generations.  ``id(block.instrs)`` is
#: not a safe cache-validation token — a rebound list can reuse a
#: GC-recycled id — so every splice stamps the block with a fresh value
#: from this counter instead.
_EDIT_GENERATIONS = itertools.count(1)


class Block:
    """A basic block: straight-line instructions ending in one terminator."""

    __slots__ = ("name", "instrs", "edit_gen", "_decode_cache", "_trace_cache")

    def __init__(self, name: str, instrs: Optional[List[Instruction]] = None):
        self.name = name
        self.instrs: List[Instruction] = instrs if instrs is not None else []
        #: Edit generation: bumped by :meth:`note_edit` whenever the
        #: instruction list is spliced or rebound.  The decode caches of
        #: :mod:`repro.machine.engine` validate against this (plus the
        #: list length as a belt-and-braces check), never against
        #: ``id(instrs)``.
        self.edit_gen = 0
        #: Compiled-code cache of :mod:`repro.machine.engine`; the
        #: generated source depends only on the instruction list, the
        #: block's base address, and a few config constants, so machines
        #: simulating the same program share one compile.
        self._decode_cache = None
        #: Compiled-trace cache of :mod:`repro.machine.trace`, keyed by
        #: the whole chain's fingerprint; lives on the chain's *head*
        #: block so machines simulating the same program share one
        #: trace compile, exactly like ``_decode_cache``.
        self._trace_cache = None

    def note_edit(self) -> None:
        """Stamp a fresh edit generation after mutating ``instrs``.

        Called by :class:`repro.edit.editor.FunctionEditor` and every
        pass that splices or rebinds the instruction list; decoded-block
        caches treat a changed generation as an eviction signal.
        """
        self.edit_gen = next(_EDIT_GENERATIONS)

    @property
    def terminator(self) -> Instruction:
        if not self.instrs:
            raise IRValidationError(f"block {self.name!r} is empty")
        return self.instrs[-1]

    def successors(self) -> List[str]:
        """Names of successor blocks implied by the terminator."""
        term = self.terminator
        kind = term.kind
        if kind == Kind.BR:
            return [term.target]
        if kind == Kind.CBR:
            return [term.then, term.els]
        return []

    def __repr__(self) -> str:
        return f"Block({self.name!r}, {len(self.instrs)} instrs)"


class Function:
    """A function: parameters arrive in registers ``0 .. num_params-1``.

    ``num_regs`` is the size of the architectural register file.  The
    executable editor (:mod:`repro.edit`) must find a register unused by
    the function's own code to hold the path sum, spilling one if the
    file is full — mirroring EEL's register scavenging.
    """

    __slots__ = ("name", "num_params", "num_regs", "blocks", "_block_index")

    def __init__(
        self,
        name: str,
        num_params: int = 0,
        num_regs: int = 32,
        blocks: Optional[List[Block]] = None,
    ):
        if num_params > num_regs:
            raise IRValidationError(
                f"function {name!r}: {num_params} params exceed {num_regs} registers"
            )
        self.name = name
        self.num_params = num_params
        self.num_regs = num_regs
        self.blocks: List[Block] = blocks if blocks is not None else []
        self._block_index: Optional[Dict[str, Block]] = None

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRValidationError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> Block:
        index = self._block_index
        if index is None or len(index) != len(self.blocks):
            index = {b.name: b for b in self.blocks}
            self._block_index = index
        return index[name]

    def invalidate_index(self) -> None:
        """Call after adding/renaming blocks outside the builder API."""
        self._block_index = None

    def add_block(self, block: Block) -> Block:
        if any(b.name == block.name for b in self.blocks):
            raise IRValidationError(
                f"function {self.name!r}: duplicate block {block.name!r}"
            )
        self.blocks.append(block)
        self._block_index = None
        return block

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instrs

    def call_sites(self) -> List[Union[Call, ICall]]:
        """All call instructions, in block order."""
        return [i for i in self.instructions() if i.kind in (Kind.CALL, Kind.ICALL)]

    def assign_call_sites(self) -> int:
        """Number call sites 0..n-1 in block order; returns the count.

        The CCT keys a call record's callee slots by these indices, so
        every pass that adds or removes calls must renumber.
        """
        site = 0
        for instr in self.instructions():
            if instr.kind in (Kind.CALL, Kind.ICALL):
                instr.site = site
                site += 1
        return site

    def max_register_used(self) -> int:
        """Highest register index referenced anywhere, or -1 if none."""
        high = self.num_params - 1
        for instr in self.instructions():
            for reg in instr.operands():
                if reg > high:
                    high = reg
            for reg in instr.defined():
                if reg > high:
                    high = reg
        return high

    def size_in_instructions(self) -> int:
        """Machine instructions the function occupies (icost-weighted)."""
        return sum(i.icost for i in self.instructions())

    def __repr__(self) -> str:
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"


class Program:
    """A linked program: functions, globals, and the indirect-call table."""

    def __init__(
        self,
        functions: Optional[Dict[str, Function]] = None,
        entry: str = "main",
        globals_size: int = 0,
    ):
        self.functions: Dict[str, Function] = functions if functions is not None else {}
        self.entry = entry
        self.globals_size = globals_size
        #: Function table for indirect calls: index -> function name.
        self.function_table: List[str] = []

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRValidationError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function_index(self, name: str) -> int:
        """Index of ``name`` in the function table, registering if new.

        Workloads place these indices in registers/memory and dispatch
        through :class:`repro.ir.instructions.ICall`.
        """
        try:
            return self.function_table.index(name)
        except ValueError:
            self.function_table.append(name)
            return len(self.function_table) - 1

    def total_instructions(self) -> int:
        return sum(f.size_in_instructions() for f in self.functions.values())

    def assign_all_call_sites(self) -> None:
        for function in self.functions.values():
            function.assign_call_sites()

    def __repr__(self) -> str:
        return f"Program({len(self.functions)} functions, entry={self.entry!r})"


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_function(function: Function, program: Optional[Program] = None) -> None:
    """Check structural invariants; raise :class:`IRValidationError` if broken.

    Invariants: nonempty; unique block names; exactly one terminator per
    block, in final position; branch targets resolve; register indices
    within the file; direct-call targets resolve (when a program is
    given); setjmp/longjmp and alloc operands in range.
    """
    if not function.blocks:
        raise IRValidationError(f"function {function.name!r} has no blocks")

    names = [b.name for b in function.blocks]
    if len(set(names)) != len(names):
        raise IRValidationError(f"function {function.name!r} has duplicate block names")
    name_set = set(names)

    nregs = function.num_regs
    for block in function.blocks:
        if not block.instrs:
            raise IRValidationError(
                f"{function.name}.{block.name}: empty block"
            )
        for pos, instr in enumerate(block.instrs):
            last = pos == len(block.instrs) - 1
            if is_terminator(instr) and not last:
                raise IRValidationError(
                    f"{function.name}.{block.name}: terminator at position {pos} "
                    f"is not last"
                )
            if last and not is_terminator(instr):
                raise IRValidationError(
                    f"{function.name}.{block.name}: block does not end in a terminator"
                )
            for reg in (*instr.operands(), *instr.defined()):
                if not 0 <= reg < nregs:
                    raise IRValidationError(
                        f"{function.name}.{block.name}: register r{reg} out of "
                        f"range (file size {nregs})"
                    )
        for target in block.successors():
            if target not in name_set:
                raise IRValidationError(
                    f"{function.name}.{block.name}: branch to unknown block "
                    f"{target!r}"
                )
        term = block.terminator
        if term.kind == Kind.CBR and term.then == term.els:
            raise IRValidationError(
                f"{function.name}.{block.name}: conditional branch with "
                f"identical arms {term.then!r}"
            )
        if program is not None and term.kind == Kind.CALL:
            pass  # calls are not terminators; handled below

    if program is not None:
        for instr in function.instructions():
            if instr.kind == Kind.CALL and instr.callee not in program.functions:
                raise IRValidationError(
                    f"{function.name}: call to unknown function {instr.callee!r}"
                )


def validate_program(program: Program) -> None:
    """Validate every function plus program-level invariants."""
    if program.entry not in program.functions:
        raise IRValidationError(f"entry function {program.entry!r} not defined")
    for name in program.function_table:
        if name not in program.functions:
            raise IRValidationError(
                f"function table references unknown function {name!r}"
            )
    for function in program.functions.values():
        validate_function(function, program)


def count_kind(program: Program, kind: Kind) -> int:
    """How many instructions of ``kind`` the program contains (test helper)."""
    return sum(
        1
        for f in program.functions.values()
        for i in f.instructions()
        if i.kind == kind
    )
