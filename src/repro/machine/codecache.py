"""Persistent on-disk cache for generated trace code.

Trace compilation (:mod:`repro.machine.trace`) is the expensive part of
a cold start: source generation plus ``compile()`` for every hot chain.
Both are pure functions of the chain's instruction content, the code
layout addresses, the config constants baked into source, and the probe
fingerprint of the attached runtimes — so a content-addressed disk
cache lets a *new process* skip codegen entirely and go straight to
``exec``-ing the marshalled code object ("warm start").

Keys are hex SHA-256 digests computed by the trace compiler over:

* ``sys.implementation.cache_tag`` (marshalled code objects are only
  valid for the interpreter that produced them);
* :func:`repro.machine.engine._config_key` — the config constants that
  appear as literals in generated source;
* per chain block: function name, block name, the instruction reprs
  (dataclass reprs are complete and stable), the laid-out addresses,
  and the block's :func:`repro.machine.engine._probe_key` fingerprint;
* ``max_instructions`` (the trace back-edge bakes the budget in).

Note what the key deliberately is *not*: ``Block.edit_gen``.  Edit
generations order edits within one process; across processes the same
program must hit the same entry, so the disk key hashes the instruction
*content* that the generation guards in memory.

Entries are two files, ``<key>.py`` (the source, for debugging) and
``<key>.bin`` (``marshal`` of the code object), plus an ``index.json``
holding sizes and a logical LRU clock.  The cache is bounded: when
either the entry cap or the byte cap is exceeded, least-recently-used
entries are evicted.  Every disk operation is best-effort — a corrupt
index, an unwritable directory, or a torn entry degrades to a cache
miss, never to an execution failure — and writes go through
same-directory temp files with atomic renames so concurrent shard
workers can share one cache.

The default location is ``$XDG_CACHE_HOME/repro/codecache`` (falling
back to ``~/.cache``); ``REPRO_CODE_CACHE`` overrides it with a path,
or disables caching entirely when set to ``0``/``off``/``none``/empty.
"""

from __future__ import annotations

import json
import marshal
import os
import tempfile
from typing import Dict, Optional, Tuple

#: Default bounds; both overridable through the environment so bench
#: and CI jobs can pin them.
MAX_ENTRIES = 512
MAX_BYTES = 32 * 1024 * 1024

_INDEX_VERSION = 1


def default_cache_dir() -> Optional[str]:
    """The resolved cache directory, or ``None`` when caching is off."""
    override = os.environ.get("REPRO_CODE_CACHE")
    if override is not None:
        if override.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "codecache")


def default_cache() -> Optional["CodeCache"]:
    """A :class:`CodeCache` at the default location (``None`` if off)."""
    directory = default_cache_dir()
    if directory is None:
        return None
    return CodeCache(directory)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


class CodeCache:
    """A bounded, content-addressed store of compiled code objects."""

    def __init__(
        self,
        directory: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.directory = directory
        self.max_entries = (
            max_entries
            if max_entries is not None
            else _env_int("REPRO_CODE_CACHE_MAX_ENTRIES", MAX_ENTRIES)
        )
        self.max_bytes = (
            max_bytes
            if max_bytes is not None
            else _env_int("REPRO_CODE_CACHE_MAX_BYTES", MAX_BYTES)
        )

    # -- index ----------------------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.directory, "index.json")

    def _load_index(self) -> Dict:
        try:
            with open(self._index_path()) as handle:
                index = json.load(handle)
        except (OSError, ValueError):
            return {"version": _INDEX_VERSION, "clock": 0, "entries": {}}
        if (
            not isinstance(index, dict)
            or index.get("version") != _INDEX_VERSION
            or not isinstance(index.get("entries"), dict)
        ):
            return {"version": _INDEX_VERSION, "clock": 0, "entries": {}}
        return index

    def _save_index(self, index: Dict) -> None:
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(index, handle, sort_keys=True)
            os.replace(tmp, self._index_path())
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- entries --------------------------------------------------------------

    def _paths(self, key: str) -> Tuple[str, str]:
        return (
            os.path.join(self.directory, f"{key}.py"),
            os.path.join(self.directory, f"{key}.bin"),
        )

    def get(self, key: str):
        """The cached code object for ``key``, or ``None`` on any miss."""
        _src, binpath = self._paths(key)
        try:
            with open(binpath, "rb") as handle:
                code = marshal.loads(handle.read())
        except (OSError, ValueError, EOFError, TypeError):
            return None
        # Touch the LRU clock; losing a race here only skews eviction
        # order, never correctness.
        try:
            index = self._load_index()
            entry = index["entries"].get(key)
            if entry is not None:
                index["clock"] += 1
                entry["used"] = index["clock"]
                self._save_index(index)
        except OSError:
            pass
        return code

    def put(self, key: str, source: str, code) -> None:
        """Store one generated trace; evict LRU entries past the caps."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            srcpath, binpath = self._paths(key)
            payload = marshal.dumps(code)
            for path, data, mode in (
                (srcpath, source, "w"),
                (binpath, payload, "wb"),
            ):
                fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
                with os.fdopen(fd, mode) as handle:
                    handle.write(data)
                os.replace(tmp, path)
            index = self._load_index()
            index["clock"] += 1
            index["entries"][key] = {
                "size": len(payload) + len(source),
                "used": index["clock"],
            }
            self._evict(index)
            self._save_index(index)
        except OSError:
            return

    def _evict(self, index: Dict) -> None:
        entries = index["entries"]
        total = sum(e.get("size", 0) for e in entries.values())
        by_age = sorted(entries, key=lambda k: entries[k].get("used", 0))
        for key in by_age:
            if len(entries) <= self.max_entries and total <= self.max_bytes:
                break
            total -= entries[key].get("size", 0)
            del entries[key]
            for path in self._paths(key):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> Dict:
        """Entry count, byte total and configured caps (for the CLI)."""
        index = self._load_index()
        entries = index["entries"]
        return {
            "directory": self.directory,
            "entries": len(entries),
            "bytes": sum(e.get("size", 0) for e in entries.values()),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> int:
        """Remove every cache entry; returns how many were dropped."""
        index = self._load_index()
        removed = len(index["entries"])
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            if name.endswith((".py", ".bin", ".tmp")) or name == "index.json":
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
        return removed


__all__ = [
    "CodeCache",
    "MAX_BYTES",
    "MAX_ENTRIES",
    "default_cache",
    "default_cache_dir",
]
