"""The machine simulator: executes IR programs and counts events.

One ``Machine`` owns the memory map, the L1 data and instruction
caches, the branch predictor, the store buffer, the sixteen-event
counter bank, and the two PIC registers.  Ordinary instructions and
instrumentation pseudo-instructions run through the same pipeline-cost
model, so instrumentation genuinely perturbs every metric.

Cost model (deliberately simple and deterministic):

* every instruction costs ``icost`` base cycles and instructions;
* a load that misses L1 D adds ``dcache_read_miss_penalty`` cycles;
* a store enters the store buffer, which drains one store per
  ``store_drain_cycles``; a full buffer stalls the pipeline;
* a conditional branch consults the 2-bit predictor; a mispredict adds
  ``mispredict_penalty`` cycles;
* an FP operation adds its latency minus one as FP stall cycles;
* an instruction fetch that changes cache line probes the I-cache.
"""

from __future__ import annotations

import os
from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.function import Function, Program
from repro.ir.instructions import BINARY_OPS, FLOAT_OPS, Imm, Kind
from repro.machine.branch import TwoBitPredictor
from repro.machine.caches import DirectMappedCache, SetAssociativeCache
from repro.machine.config import MachineConfig
from repro.machine.counters import CounterBank, Event, PicRegisters
from repro.machine.memory import WORD, MemoryMap

# Event indices as plain ints for the hot loop.
_CYCLES = int(Event.CYCLES)
_INSTRS = int(Event.INSTRS)
_DC_READ = int(Event.DC_READ)
_DC_WRITE = int(Event.DC_WRITE)
_DC_READ_MISS = int(Event.DC_READ_MISS)
_DC_WRITE_MISS = int(Event.DC_WRITE_MISS)
_DC_MISS = int(Event.DC_MISS)
_IC_REF = int(Event.IC_REF)
_IC_MISS = int(Event.IC_MISS)
_BRANCHES = int(Event.BRANCHES)
_BR_TAKEN = int(Event.BR_TAKEN)
_BR_MISPRED = int(Event.BR_MISPRED)
_SB_STALL = int(Event.SB_STALL)
_FP_STALL = int(Event.FP_STALL)
_LOADS = int(Event.LOADS)
_STORES = int(Event.STORES)


class MachineError(Exception):
    """Raised for runtime faults: bad calls, stack overflow, runaway runs."""


class Frame:
    """One activation record."""

    __slots__ = (
        "function",
        "regs",
        "block_name",
        "index",
        "ret_reg",
        "base_addr",
        "saved_pic",
        "is_signal",
    )

    def __init__(self, function: Function, base_addr: int, ret_reg: Optional[int]):
        self.function = function
        self.regs: List[Union[int, float]] = [0] * function.num_regs
        self.block_name = function.entry.name
        self.index = 0
        self.ret_reg = ret_reg
        self.base_addr = base_addr
        self.saved_pic: Tuple[int, int] = (0, 0)
        #: Pushed by asynchronous signal delivery, not by a call.
        self.is_signal = False


class RunResult:
    """Counters and outcome of one program execution."""

    def __init__(self, machine: "Machine", return_value: Union[int, float, None]):
        self.machine = machine
        self.return_value = return_value
        self.counters: Dict[Event, int] = machine.counters.snapshot()
        #: Per-region D-cache misses, frozen to a plain dict.
        self.region_misses: Dict[str, int] = dict(machine.region_misses)

    @property
    def instructions(self) -> int:
        return self.counters[Event.INSTRS]

    @property
    def cycles(self) -> int:
        return self.counters[Event.CYCLES]

    def __getitem__(self, event: Event) -> int:
        return self.counters[event]

    def __repr__(self) -> str:
        return (
            f"RunResult(ret={self.return_value!r}, "
            f"instrs={self.instructions}, cycles={self.cycles})"
        )


class Machine:
    """Executes one program; create a fresh machine per run for cold caches."""

    def __init__(
        self,
        program: Program,
        config: Optional[MachineConfig] = None,
        pic0_event: Event = Event.INSTRS,
        pic1_event: Event = Event.DC_MISS,
        engine: Optional[str] = None,
    ):
        self.program = program
        self.config = config or MachineConfig()
        self.config.validate()
        self.memory = MemoryMap(program.globals_size)
        self.counters = CounterBank()
        self.pic = PicRegisters(self.counters, pic0_event, pic1_event)
        cfg = self.config
        #: Which execution engine :meth:`run` uses by default: "fast"
        #: (the predecoded engine of :mod:`repro.machine.engine`),
        #: "trace" (the superblock tier of :mod:`repro.machine.trace`
        #: layered above it) or "simple" (the reference if/elif
        #: interpreter).  Overridable per run, per machine, or globally
        #: via ``REPRO_ENGINE``.
        self.engine = engine or os.environ.get("REPRO_ENGINE", "fast")
        if cfg.dcache_assoc == 1:
            self.dcache = DirectMappedCache(cfg.dcache_size, cfg.dcache_line)
        else:
            self.dcache = SetAssociativeCache(
                cfg.dcache_size, cfg.dcache_line, cfg.dcache_assoc
            )
        self.icache = SetAssociativeCache(cfg.icache_size, cfg.icache_line, cfg.icache_assoc)
        self.l2 = (
            SetAssociativeCache(cfg.l2_size, cfg.l2_line, cfg.l2_assoc)
            if cfg.l2_enabled
            else None
        )
        self.predictor = TwoBitPredictor(cfg.predictor_entries)
        self._store_buffer: deque = deque()
        self._icache_line_bits = cfg.icache_line.bit_length() - 1
        #: Last fetched I-cache line, in a one-slot list so decoded
        #: closures and generated code can share the state cheaply.
        self._iline: List[int] = [-1]

        # Attached instrumentation runtimes (set by repro.instrument /
        # repro.cct before run() when the program is instrumented).
        self.path_runtime = None
        self.cct_runtime = None

        #: D-cache misses attributed to the memory region of the
        #: missing address: quantifies how much of the miss traffic the
        #: instrumentation's own data (profiling tables, CCT heap,
        #: frame spills) contributes — the §3.2 pollution, measured.
        #: (A defaultdict for the hot path; snapshots freeze plain dicts.)
        self.region_misses: Dict[str, int] = defaultdict(int)

        #: Optional tracer with on_enter/on_exit/on_block callbacks;
        #: used by the ground-truth oracle profiler in tests.
        self.tracer = None

        self._jmpbufs: List[Tuple[int, str, int, int]] = []
        #: Current call depth; the CCT runtime pairs its shadow stack
        #: with frames through this.
        self.depth = 0

        # Asynchronous signal delivery (paper §4.2: signal handlers are
        # additional program entry points; the CCT grows extra roots).
        self._signal_handler: Optional[str] = None
        self._signal_period = 0
        self._next_signal_at = 0
        self.signals_delivered = 0
        #: Nonzero while a handler (or anything it called) runs:
        #: signals stay masked for the handler's whole dynamic extent.
        self._signal_depth = 0
        from repro.edit.layout import assign_layout

        self.layout = assign_layout(program)

        #: Call stack, shared with the execution engines (a persistent
        #: list so decoded closures can bind its identity once).
        self._frames: List[Frame] = []
        self._return_value: Union[int, float, None] = None
        #: (function, block) -> DecodedBlock cache for the fast engine.
        self._decoded: Dict[Tuple[str, str], object] = {}
        #: Successor-link cells baked into decoded transfers; reset on
        #: any invalidation so no stale decoded block survives a splice.
        self._decode_links: List[list] = []
        self._codegen_ns: Optional[dict] = None
        #: Block-compilation observability (why warm runs are fast):
        #: ``decoded_blocks`` counts per-machine bindings, and the
        #: source-cache hit/miss split says how many skipped codegen
        #: via the block-level compiled-source cache.
        self.codegen_stats: Dict[str, int] = {
            "decoded_blocks": 0,
            "source_cache_hits": 0,
            "source_cache_misses": 0,
        }
        #: Trace-tier state (:class:`repro.machine.trace.TraceState`),
        #: created lazily on the first ``engine="trace"`` run.
        self._trace_state = None
        #: Trace-tier observability: traces compiled/entered, disk code
        #: cache hits and misses, deopt exits.  Zeros until a trace run.
        self.trace_stats: Dict[str, int] = {
            "traces_compiled": 0,
            "traces_generated": 0,
            "trace_blocks": 0,
            "trace_entries": 0,
            "disk_cache_hits": 0,
            "disk_cache_misses": 0,
        }

    # ------------------------------------------------------------------
    # Memory traffic helpers (shared by program loads/stores and the
    # instrumentation runtimes).
    # ------------------------------------------------------------------

    def _note_miss(self, address: int) -> None:
        self.region_misses[self.memory.region_of(address)] += 1

    def _read_miss_cycles(self, address: int) -> int:
        """Cycles an L1 read miss costs: L2 hit or full memory trip."""
        if self.l2 is None:
            return self.config.dcache_read_miss_penalty
        if self.l2.access(address):
            return self.config.dcache_read_miss_penalty
        return self.config.l2_miss_penalty

    def probe_read(self, address: int) -> Union[int, float]:
        counts = self.counters.counts
        counts[_LOADS] += 1
        counts[_DC_READ] += 1
        if not self.dcache.access(address):
            counts[_DC_READ_MISS] += 1
            counts[_DC_MISS] += 1
            counts[_CYCLES] += self._read_miss_cycles(address)
            self._note_miss(address)
        return self.memory.read(address)

    def probe_write(self, address: int, value: Union[int, float]) -> None:
        counts = self.counters.counts
        counts[_STORES] += 1
        counts[_DC_WRITE] += 1
        if not self.dcache.access(address, allocate=self.config.dcache_write_allocate):
            counts[_DC_WRITE_MISS] += 1
            counts[_DC_MISS] += 1
            self._note_miss(address)
        self._store_buffer_push()
        self.memory.write(address, value)

    def _store_buffer_push(self) -> None:
        counts = self.counters.counts
        now = counts[_CYCLES]
        buffer = self._store_buffer
        while buffer and buffer[0] <= now:
            buffer.popleft()
        if len(buffer) >= self.config.store_buffer_depth:
            stall = buffer[0] - now
            counts[_CYCLES] += stall
            counts[_SB_STALL] += stall
            now += stall
            while buffer and buffer[0] <= now:
                buffer.popleft()
        last = buffer[-1] if buffer else now
        buffer.append(max(now, last) + self.config.store_drain_cycles)

    def install_signal(self, handler: str, period: int) -> None:
        """Deliver an asynchronous signal every ``period`` instructions.

        The handler (a zero- or one-parameter function; it receives the
        signal count) runs on its own frame at the next block boundary
        after the period elapses, with resumption semantics: its return
        continues the interrupted code exactly where it stopped.
        """
        if handler not in self.program.functions:
            raise MachineError(f"unknown signal handler {handler!r}")
        if self.program.functions[handler].num_params > 1:
            raise MachineError("signal handlers take at most one parameter")
        if period <= 0:
            raise MachineError("signal period must be positive")
        self._signal_handler = handler
        self._signal_period = period
        self._next_signal_at = period

    def charge(self, instructions: int) -> None:
        """Charge extra dynamic instructions (CCT slow paths etc.)."""
        counts = self.counters.counts
        counts[_INSTRS] += instructions
        counts[_CYCLES] += instructions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, *args: Union[int, float], engine: Optional[str] = None) -> RunResult:
        """Execute the program; ``engine`` overrides the machine default.

        ``engine="fast"`` uses the predecoded block engine
        (:mod:`repro.machine.engine`, the default); ``engine="simple"``
        uses the reference if/elif interpreter.  Both produce
        bit-identical counters (the differential tests enforce it).
        """
        engine_name = engine or self.engine
        program = self.program
        entry = program.functions.get(program.entry)
        if entry is None:
            raise MachineError(f"entry function {program.entry!r} missing")
        if len(args) != entry.num_params:
            raise MachineError(
                f"{program.entry} takes {entry.num_params} args, got {len(args)}"
            )
        frames = self._frames
        frames.clear()
        frame = Frame(entry, self.memory.frame_base(0, self.config.frame_words), None)
        for i, value in enumerate(args):
            frame.regs[i] = value
        frames.append(frame)
        self.depth = 1
        self._return_value = None

        tracer = self.tracer
        if tracer is not None:
            tracer.on_enter(entry.name, -1)
            tracer.on_block(entry.name, frame.block_name)

        if engine_name == "fast":
            from repro.machine.engine import execute

            return RunResult(self, execute(self))
        if engine_name == "trace":
            from repro.machine.trace import execute as trace_execute

            return RunResult(self, trace_execute(self))
        if engine_name == "simple":
            return RunResult(self, self._run_simple())
        raise MachineError(f"unknown engine {engine_name!r}")

    # -- engine plumbing ----------------------------------------------------

    def _deliver_signal(self) -> None:
        """Push a signal-handler frame (both engines call this at block
        boundaries when the period has elapsed and signals are unmasked)."""
        counts = self.counters.counts
        frames = self._frames
        self._next_signal_at = counts[_INSTRS] + self._signal_period
        self.signals_delivered += 1
        self._signal_depth += 1
        handler = self.program.functions[self._signal_handler]
        signal_frame = Frame(
            handler,
            self.memory.frame_base(len(frames), self.config.frame_words),
            None,
        )
        signal_frame.is_signal = True
        if handler.num_params == 1:
            signal_frame.regs[0] = self.signals_delivered
        frames.append(signal_frame)
        self.depth = len(frames)
        if self.cct_runtime is not None:
            self.cct_runtime.on_signal_delivery(self, handler.name)
        tracer = self.tracer
        if tracer is not None:
            tracer.on_enter(handler.name, -2)
            tracer.on_block(handler.name, signal_frame.block_name)

    def _codegen_namespace(self) -> dict:
        """Globals shared by all generated segment code on this machine."""
        if self._codegen_ns is None:
            from repro.machine.engine import CODEGEN_GLOBALS

            self._codegen_ns = dict(CODEGEN_GLOBALS)
            self._codegen_ns["_halloc"] = self.memory.heap_alloc
        return self._codegen_ns

    def _validate_decoded(self) -> None:
        """Evict decoded blocks that no longer match the program.

        A decoding is stale when the block's edit generation moved (any
        :meth:`repro.ir.function.Block.note_edit` splice), the block
        disappeared, or the machine's attached runtimes changed since
        the fused probes bound their tables and CCT state.  Called once
        per run by the fast engine; programs cannot be edited mid-run,
        so the per-run sweep is enough for the hot loop's cache hits to
        skip validation entirely.
        """
        stale = []
        functions = self.program.functions
        runtimes = (self.path_runtime, self.cct_runtime)
        for key, decoded in self._decoded.items():
            fname, bname = key
            function = functions.get(fname)
            block = None
            if function is not None:
                try:
                    block = function.block(bname)
                except KeyError:
                    block = None
            if (
                block is None
                or decoded.edit_gen != block.edit_gen
                or decoded.n_instrs != len(block.instrs)
                or decoded.runtimes[0] is not runtimes[0]
                or decoded.runtimes[1] is not runtimes[1]
            ):
                stale.append(key)
        for key in stale:
            del self._decoded[key]
        if stale:
            for cell in self._decode_links:
                cell[0] = None

    def _decoded_block(self, function: Function, block_name: str):
        """Fetch (or build) the decoded form of one block.

        Cached by ``(function, block)`` and validated against the
        block's edit generation and length, so splices that replace or
        grow ``block.instrs`` re-decode automatically.  (Generation,
        not ``id(block.instrs)``: a rebound list can reuse the id of a
        garbage-collected predecessor and validate a stale decoding.)
        """
        key = (function.name, block_name)
        block = function.block(block_name)
        instrs = block.instrs
        decoded = self._decoded.get(key)
        if (
            decoded is not None
            and decoded.edit_gen == block.edit_gen
            and decoded.n_instrs == len(instrs)
        ):
            return decoded
        from repro.machine.engine import decode_block

        decoded = decode_block(self, function, block)
        self._decoded[key] = decoded
        return decoded

    def invalidate_decoded(self) -> None:
        """Drop all decoded blocks and recompute the code layout.

        Call after editing the program underneath a live machine (the
        supported flow — instrument first, then build the machine —
        never needs this; the per-block generation check catches
        ordinary :mod:`repro.edit` splices anyway).  Bumps every
        block's edit generation and drops its compiled-source cache, so
        even in-place instruction mutations the editor never saw are
        picked up — by this machine and any other simulating the same
        program.
        """
        from repro.edit.layout import assign_layout

        self._decoded.clear()
        for cell in self._decode_links:
            cell[0] = None
        self._decode_links.clear()
        if self._trace_state is not None:
            self._trace_state.invalidate()
        for function in self.program.functions.values():
            for block in function.blocks:
                block.note_edit()
                block._decode_cache = None
                block._trace_cache = None
        self.layout = assign_layout(self.program)

    def _run_simple(self) -> Union[int, float, None]:
        frames = self._frames
        counts = self.counters.counts
        config = self.config
        memory = self.memory
        dcache = self.dcache
        functions = self.program.functions
        addrs_of = self.layout.block_addrs
        line_bits = self._icache_line_bits
        iline_cell = self._iline
        max_instructions = config.max_instructions
        tracer = self.tracer
        return_value: Union[int, float, None] = None

        while frames:
            if (
                self._signal_handler is not None
                and counts[_INSTRS] >= self._next_signal_at
                and self._signal_depth == 0
            ):
                self._deliver_signal()

            frame = frames[-1]
            function = frame.function
            fname = function.name
            block = function.block(frame.block_name)
            instrs = block.instrs
            addrs = addrs_of[(fname, frame.block_name)]
            i = frame.index
            n = len(instrs)
            if counts[_INSTRS] > max_instructions:
                raise MachineError(
                    f"instruction budget exceeded ({max_instructions})"
                )

            transferred = False
            while i < n:
                instr = instrs[i]
                address = addrs[i]
                i += 1
                kind = instr.kind
                # --- fetch ---
                counts[_IC_REF] += 1
                iline = address >> line_bits
                if iline != iline_cell[0]:
                    iline_cell[0] = iline
                    if not self.icache.access(address):
                        counts[_IC_MISS] += 1
                        counts[_CYCLES] += config.icache_miss_penalty
                counts[_INSTRS] += instr.icost
                counts[_CYCLES] += instr.icost
                if counts[_INSTRS] > max_instructions:
                    raise MachineError(
                        f"instruction budget exceeded ({max_instructions})"
                    )

                if kind == Kind.BINOP:
                    regs = frame.regs
                    b = instr.b
                    bv = b.value if b.__class__ is Imm else regs[b]
                    regs[instr.dst] = BINARY_OPS[instr.op](regs[instr.a], bv)
                elif kind == Kind.LOAD:
                    regs = frame.regs
                    addr = regs[instr.base] + instr.offset
                    counts[_LOADS] += 1
                    counts[_DC_READ] += 1
                    if not dcache.access(addr):
                        counts[_DC_READ_MISS] += 1
                        counts[_DC_MISS] += 1
                        counts[_CYCLES] += self._read_miss_cycles(addr)
                        self._note_miss(addr)
                    regs[instr.dst] = memory.read(addr)
                elif kind == Kind.STORE:
                    regs = frame.regs
                    src = instr.src
                    value = src.value if src.__class__ is Imm else regs[src]
                    addr = regs[instr.base] + instr.offset
                    counts[_STORES] += 1
                    counts[_DC_WRITE] += 1
                    if not dcache.access(addr, allocate=config.dcache_write_allocate):
                        counts[_DC_WRITE_MISS] += 1
                        counts[_DC_MISS] += 1
                        self._note_miss(addr)
                    self._store_buffer_push()
                    memory.write(addr, value)
                elif kind == Kind.CONST:
                    frame.regs[instr.dst] = instr.value
                elif kind == Kind.MOVE:
                    regs = frame.regs
                    regs[instr.dst] = regs[instr.src]
                elif kind == Kind.CBR:
                    taken = frame.regs[instr.cond] != 0
                    counts[_BRANCHES] += 1
                    if taken:
                        counts[_BR_TAKEN] += 1
                    if not self.predictor.predict_and_update(address, taken):
                        counts[_BR_MISPRED] += 1
                        counts[_CYCLES] += config.mispredict_penalty
                    target = instr.then if taken else instr.els
                    frame.block_name = target
                    frame.index = 0
                    if tracer is not None:
                        tracer.on_block(fname, target)
                    transferred = True
                    break
                elif kind == Kind.BR:
                    frame.block_name = instr.target
                    frame.index = 0
                    if tracer is not None:
                        tracer.on_block(fname, instr.target)
                    transferred = True
                    break
                elif kind == Kind.FBINOP:
                    regs = frame.regs
                    b = instr.b
                    bv = b.value if b.__class__ is Imm else regs[b]
                    regs[instr.dst] = FLOAT_OPS[instr.op](regs[instr.a], bv)
                    latency = config.fp_latencies[instr.op]
                    counts[_CYCLES] += latency - 1
                    counts[_FP_STALL] += latency - 1
                elif kind == Kind.CALL or kind == Kind.ICALL:
                    regs = frame.regs
                    if kind == Kind.CALL:
                        callee = functions.get(instr.callee)
                        if callee is None:
                            raise MachineError(f"call to unknown {instr.callee!r}")
                    else:
                        findex = regs[instr.func]
                        table = self.program.function_table
                        if not 0 <= findex < len(table):
                            raise MachineError(
                                f"indirect call through bad index {findex!r}"
                            )
                        callee = functions[table[findex]]
                    if len(frames) >= config.max_call_depth:
                        raise MachineError("call stack overflow")
                    if len(instr.args) > callee.num_params:
                        raise MachineError(
                            f"{fname}: too many args for {callee.name}"
                        )
                    frame.index = i
                    new_frame = Frame(
                        callee,
                        self.memory.frame_base(len(frames), config.frame_words),
                        instr.dst,
                    )
                    new_regs = new_frame.regs
                    for pos, arg in enumerate(instr.args):
                        new_regs[pos] = arg.value if arg.__class__ is Imm else regs[arg]
                    frames.append(new_frame)
                    self.depth = len(frames)
                    if tracer is not None:
                        tracer.on_enter(callee.name, instr.site)
                        tracer.on_block(callee.name, new_frame.block_name)
                    transferred = True
                    break
                elif kind == Kind.RET:
                    value = instr.value
                    if value is not None:
                        regs = frame.regs
                        value = value.value if value.__class__ is Imm else regs[value]
                    frames.pop()
                    self.depth = len(frames)
                    if frame.is_signal:
                        self._signal_depth -= 1
                        # Re-arm from handler completion so a period
                        # shorter than the handler cannot starve the
                        # interrupted code (timer semantics).
                        self._next_signal_at = (
                            counts[_INSTRS] + self._signal_period
                        )
                        if self.cct_runtime is not None:
                            self.cct_runtime.on_signal_return(self)
                    if tracer is not None:
                        tracer.on_exit(fname, value)
                    if not frames:
                        return_value = value
                    else:
                        caller = frames[-1]
                        if frame.ret_reg is not None and not frame.is_signal:
                            caller.regs[frame.ret_reg] = 0 if value is None else value
                    transferred = True
                    break
                elif kind == Kind.ALLOC:
                    regs = frame.regs
                    size = instr.size
                    sv = size.value if size.__class__ is Imm else regs[size]
                    regs[instr.dst] = memory.heap_alloc(sv)
                elif kind == Kind.FRAME_LOAD:
                    addr = frame.base_addr + instr.slot * WORD
                    counts[_LOADS] += 1
                    counts[_DC_READ] += 1
                    if not dcache.access(addr):
                        counts[_DC_READ_MISS] += 1
                        counts[_DC_MISS] += 1
                        counts[_CYCLES] += self._read_miss_cycles(addr)
                        self._note_miss(addr)
                    frame.regs[instr.dst] = memory.read(addr)
                elif kind == Kind.FRAME_STORE:
                    addr = frame.base_addr + instr.slot * WORD
                    value = frame.regs[instr.src]
                    counts[_STORES] += 1
                    counts[_DC_WRITE] += 1
                    if not dcache.access(addr, allocate=config.dcache_write_allocate):
                        counts[_DC_WRITE_MISS] += 1
                        counts[_DC_MISS] += 1
                        self._note_miss(addr)
                    self._store_buffer_push()
                    memory.write(addr, value)
                # --- instrumentation pseudo-instructions ---
                elif kind == Kind.PATH_RESET:
                    frame.regs[instr.reg] = 0
                elif kind == Kind.PATH_ADD:
                    frame.regs[instr.reg] += instr.value
                elif kind == Kind.PATH_COMMIT:
                    self._require_path_runtime().commit(self, frame, instr)
                elif kind == Kind.HWC_ZERO:
                    self.pic.write_zero()
                    self.pic.read()
                elif kind == Kind.HWC_ACCUM:
                    self._require_path_runtime().accumulate(self, frame, instr)
                elif kind == Kind.HWC_SAVE:
                    frame.saved_pic = self.pic.read()
                    self.probe_write(
                        frame.base_addr + (config.frame_words - 1) * WORD,
                        frame.saved_pic[0],
                    )
                elif kind == Kind.HWC_RESTORE:
                    self.probe_read(frame.base_addr + (config.frame_words - 1) * WORD)
                    self.pic.write_values(*frame.saved_pic)
                    self.pic.read()
                elif kind == Kind.EDGE_COUNT:
                    self._require_path_runtime().edge_count(self, instr)
                elif kind == Kind.K_PATH_ADD:
                    regs = frame.regs
                    value = regs[instr.reg]
                    regs[instr.reg] = value + instr.values[value % instr.k]
                elif kind == Kind.K_HWC_CYCLE:
                    self._require_path_runtime().k_cycle(self, frame, instr)
                elif kind == Kind.K_HWC_EXIT:
                    self._require_path_runtime().k_exit(self, frame, instr)
                elif kind == Kind.CCT_ENTER:
                    self._require_cct_runtime().enter(self, frame, instr)
                elif kind == Kind.CCT_CALL:
                    self._require_cct_runtime().before_call(self, frame, instr)
                elif kind == Kind.CCT_EXIT:
                    self._require_cct_runtime().exit(self, frame, instr)
                elif kind == Kind.CCT_PROBE:
                    self._require_cct_runtime().probe(self, frame, instr)
                elif kind == Kind.SETJMP:
                    handle = len(self._jmpbufs)
                    self._jmpbufs.append(
                        (len(frames), frame.block_name, i, instr.dst)
                    )
                    frame.regs[instr.env] = handle
                    frame.regs[instr.dst] = 0
                elif kind == Kind.LONGJMP:
                    regs = frame.regs
                    handle = regs[instr.env]
                    if not 0 <= handle < len(self._jmpbufs):
                        raise MachineError(f"longjmp through bad handle {handle!r}")
                    depth, block_name, resume_index, dst_reg = self._jmpbufs[handle]
                    if depth > len(frames):
                        raise MachineError("longjmp to a dead frame")
                    value = instr.value
                    value = value.value if value.__class__ is Imm else regs[value]
                    if value == 0:
                        value = 1
                    while len(frames) > depth:
                        dead = frames.pop()
                        if tracer is not None:
                            tracer.on_exit(dead.function.name, None)
                    self.depth = len(frames)
                    if self.cct_runtime is not None:
                        self.cct_runtime.unwind_to(self, len(frames))
                    target = frames[-1]
                    target.block_name = block_name
                    target.index = resume_index
                    target.regs[dst_reg] = value
                    if tracer is not None:
                        tracer.on_block(target.function.name, block_name)
                    transferred = True
                    break
                else:  # pragma: no cover
                    raise MachineError(f"unimplemented instruction kind {kind!r}")

            if not transferred:
                # Fell off the end of a block without a terminator;
                # validation prevents this, but guard anyway.
                raise MachineError(
                    f"{fname}.{frame.block_name}: fell through block end"
                )

        return return_value

    # ------------------------------------------------------------------

    def _require_path_runtime(self):
        if self.path_runtime is None:
            raise MachineError(
                "program contains path/edge instrumentation but no "
                "profiling runtime is attached"
            )
        return self.path_runtime

    def _require_cct_runtime(self):
        if self.cct_runtime is None:
            raise MachineError(
                "program contains CCT instrumentation but no CCT runtime "
                "is attached"
            )
        return self.cct_runtime
