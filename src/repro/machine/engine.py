"""Predecoded block execution engine ("decode once, execute many").

The simple interpreter in :mod:`repro.machine.vm` re-inspects
``instr.kind`` through a long ``if/elif`` chain for every *dynamic*
instruction and recomputes fetch bookkeeping (``address >> line_bits``)
per instruction.  All of that is static per *static* instruction, so
this engine compiles each basic block once and caches the result on the
machine:

* the block is partitioned into **segments** — maximal straight-line
  runs ending at a control transfer (branch, call, return, longjmp), a
  setjmp (so longjmp resume points always land on a segment boundary),
  or the :data:`SEGMENT_CAP` safety split;
* each segment's common instructions (const/move/binop/fbinop, loads,
  stores, conditional and unconditional branches, alloc and the
  path-register pseudo-ops) are compiled to one specialized Python
  function — generated source with register numbers, immediates,
  addresses and cost constants inlined as literals, ``exec``-ed once at
  decode time;
* the instrumentation hooks spliced by :mod:`repro.instrument` are
  **fused** into the generated source wherever their behaviour is
  static: array-table ``bump``/``accumulate`` fast paths with slot
  addresses and strides as literals, ``edge_count`` with the whole
  address precomputed, the PIC zero/save/restore sequences, the CCT
  gCSP store before calls, and the CCT entry/exit protocol with a
  generated tag-0 fast path that only calls into the runtime
  (``CCTRuntime._enter_slow``) for tag-1/tag-2 slots.  Hash tables,
  per-context tables (the combined mode's ``table == -1``), CCT
  backedge probes, and programs run without an attached runtime keep
  the closure fallback;
* stateful-but-rare instructions (calls, returns, setjmp/longjmp and
  non-fusible instrumentation hooks) become one specialized closure
  handler per instruction, with operands, callee records and cost
  constants bound at decode time; segments invoke them directly;
* block-static work is hoisted out of the inner loop: per-run
  ``IC_REF``/``INSTRS``/``CYCLES``/``FP_STALL`` increments are batched
  into partial sums flushed before the next counter *observer*, and the
  per-instruction ``address >> line_bits`` check is replaced by probes
  at precomputed I-cache line-crossing addresses.

Equivalence argument: inside a batched run no operation reads a
counter, so only the *order* of commutative additions into the counter
bank differs from one-at-a-time execution; the totals at every
observation point are identical.  The observers are store-buffer pushes
(which read ``CYCLES``), PIC reads (which read any event), the signal
delivery and budget checks at block/segment boundaries, and run end —
the decoder flushes pending cost sums before each of them.  A fused
probe flushes only when its body actually reads a counter: every
simulated profiling *store* drains the store buffer (an observer) and
every PIC access latches counter values, so those sequences flush
first, while the pure gCSP assignment of ``CctCall`` batches straight
through.  Unlike closure handlers, fused probes neither break the
segment nor reset the static I-cache line tracking, so the probe
sequence stays exactly the one the simple engine's dynamic
``iline != last_iline`` test produces.  I-cache probes happen at
exactly the addresses where that dynamic test would fire: within a
segment the line sequence is static, and the one dynamic case (the
first instruction executed after a control transfer) is checked against
the machine's line state at every segment head and inside every
closure handler.

Decoded blocks are cached per machine, keyed by ``(function, block)``
and validated against the block's **edit generation** (a monotonic
counter :meth:`repro.ir.function.Block.note_edit` bumps on every
splice; ``id(block.instrs)`` is unsafe — a GC'd list's id can be
reused) plus ``len(block.instrs)``, so :mod:`repro.edit` splices
invalidate stale entries automatically; call
:meth:`Machine.invalidate_decoded` after any other program surgery.
The generated source cached on the block additionally keys on a
*probe fingerprint* — the table geometry and CCT flags baked into
fused probes — so machines with differently-shaped runtimes never
share compiled code.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.cct.records import CallRecord
from repro.cct.runtime import GCSP_SLOT, _ShadowEntry
from repro.instrument.tables import TableKind
from repro.ir.instructions import (
    BINARY_OPS,
    FLOAT_OPS,
    Imm,
    Kind,
    _int_div,
    _int_mod,
)
from repro.machine.counters import Event
from repro.machine.memory import WORD

_CYCLES = int(Event.CYCLES)
_INSTRS = int(Event.INSTRS)
_DC_READ = int(Event.DC_READ)
_DC_WRITE = int(Event.DC_WRITE)
_DC_READ_MISS = int(Event.DC_READ_MISS)
_DC_WRITE_MISS = int(Event.DC_WRITE_MISS)
_DC_MISS = int(Event.DC_MISS)
_IC_REF = int(Event.IC_REF)
_IC_MISS = int(Event.IC_MISS)
_BRANCHES = int(Event.BRANCHES)
_BR_TAKEN = int(Event.BR_TAKEN)
_BR_MISPRED = int(Event.BR_MISPRED)
_FP_STALL = int(Event.FP_STALL)
_LOADS = int(Event.LOADS)
_STORES = int(Event.STORES)

#: Upper bound on instructions compiled into one segment: the engine
#: checks the instruction budget between segments, so this bounds how
#: far past ``max_instructions`` a straight-line run can get.
SEGMENT_CAP = 64

#: Kinds compiled inline into generated segment code.  Everything else
#: gets a per-instruction closure handler.
_INLINE_KINDS = frozenset(
    {
        Kind.CONST,
        Kind.MOVE,
        Kind.BINOP,
        Kind.FBINOP,
        Kind.LOAD,
        Kind.STORE,
        Kind.FRAME_LOAD,
        Kind.FRAME_STORE,
        Kind.ALLOC,
        Kind.BR,
        Kind.CBR,
        Kind.PATH_RESET,
        Kind.PATH_ADD,
        Kind.K_PATH_ADD,
    }
)

#: Integer binops that map to a Python operator with semantics
#: identical to the BINARY_OPS lambda (comparisons are emitted as
#: ``1 if a < b else 0`` so results stay int, never bool).
_INT_OP_FMT = {
    "add": "{a} + {b}",
    "sub": "{a} - {b}",
    "mul": "{a} * {b}",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "{a} << {b}",
    "shr": "{a} >> {b}",
    "eq": "1 if {a} == {b} else 0",
    "ne": "1 if {a} != {b} else 0",
    "lt": "1 if {a} < {b} else 0",
    "le": "1 if {a} <= {b} else 0",
    "gt": "1 if {a} > {b} else 0",
    "ge": "1 if {a} >= {b} else 0",
    "div": "_idiv({a}, {b})",
    "mod": "_imod({a}, {b})",
    "min": "min({a}, {b})",
    "max": "max({a}, {b})",
}

_FLOAT_OP_FMT = {
    "fadd": "{a} + {b}",
    "fsub": "{a} - {b}",
    "fmul": "{a} * {b}",
    "fdiv": "_fdiv({a}, {b})",
}


def _literal(value) -> str:
    """A source literal that evaluates to exactly ``value``."""
    if isinstance(value, float) and not math.isfinite(value):
        return f"float({str(value)!r})"
    return repr(value)


class DecodedBlock:
    """One block's compiled step list plus cache-validation metadata."""

    __slots__ = (
        "steps",
        "nsteps",
        "resume",
        "edit_gen",
        "n_instrs",
        "total_icost",
        "source",
        "runtimes",
        "key",
        "hot",
    )

    def __init__(
        self,
        steps: List[Callable],
        resume: Dict[int, int],
        edit_gen: int,
        n_instrs: int,
        total_icost: int,
        source: str,
        runtimes: Tuple,
    ):
        self.steps = steps
        self.nsteps = len(steps)
        #: Instruction index -> step index, defined for every step start
        #: (block entry, and the instruction after each call/setjmp —
        #: the only places ``frame.index`` can point mid-block).
        self.resume = resume
        #: The block's edit generation at decode time; a bumped
        #: generation (any splice) evicts this decoding.
        self.edit_gen = edit_gen
        self.n_instrs = n_instrs
        self.total_icost = total_icost
        #: The generated segment source (kept for tests and debugging).
        self.source = source
        #: The (path_runtime, cct_runtime) pair whose tables/records the
        #: fused probes bound; strong references on purpose, so identity
        #: comparison in ``_validate_decoded`` can never hit a recycled
        #: ``id``.  Swapping runtimes between runs evicts the decoding.
        self.runtimes = runtimes
        #: ``(function_name, block_name)`` — the decoded-cache key.  The
        #: trace tier reads it off branch-transfer returns to attribute
        #: heat to chain links without re-deriving the name.
        self.key: Optional[Tuple[str, str]] = None
        #: Trace-tier latch: ``None`` until the tier resolves this block
        #: (then the compiled trace function or its BLACKLIST sentinel),
        #: so steady-state transfers pay one slot load instead of a
        #: tuple-hashed dispatch lookup.  Per-machine, like the closures.
        self.hot = None


# ---------------------------------------------------------------------------
# Closure handlers for the non-inlined kinds (one per instruction; each
# performs its own fetch so counter observations keep the simple
# engine's exact order).
# ---------------------------------------------------------------------------


def _make_handler(machine, counts, instr, addr: int, iline: int, next_index: int, fname: str):
    from repro.machine.vm import Frame, MachineError

    kind = instr.kind
    config = machine.config
    icache_access = machine.icache.access
    icache_penalty = config.icache_miss_penalty
    icost = instr.icost
    cell = machine._iline
    IC_REF, IC_MISS, CYCLES, INSTRS = _IC_REF, _IC_MISS, _CYCLES, _INSTRS
    frames = machine._frames
    functions = machine.program.functions

    # The three hot handler kinds get fully fused closures (fetch and
    # behaviour in one function); everything else goes through the
    # generic fetch wrapper around _make_body.
    if kind == Kind.CALL or kind == Kind.ICALL:
        frame_base = machine.memory.frame_base
        frame_words = config.frame_words
        max_call_depth = config.max_call_depth
        dst, site, args = instr.dst, instr.site, instr.args
        nargs = len(args)
        imm_args = tuple(
            (pos, a.value) for pos, a in enumerate(args) if a.__class__ is Imm
        )
        reg_args = tuple(
            (pos, a) for pos, a in enumerate(args) if a.__class__ is not Imm
        )
        if kind == Kind.CALL:
            callee = functions.get(instr.callee)
            callee_name = instr.callee
            table = None
            func_reg = None
        else:
            callee = None
            callee_name = None
            table = machine.program.function_table
            func_reg = instr.func

        def step(frame):
            if iline != cell[0]:
                cell[0] = iline
                if not icache_access(addr):
                    counts[IC_MISS] += 1
                    counts[CYCLES] += icache_penalty
            counts[IC_REF] += 1
            counts[INSTRS] += icost
            counts[CYCLES] += icost
            if callee is not None:
                target = callee
            elif table is None:
                raise MachineError(f"call to unknown {callee_name!r}")
            else:
                findex = frame.regs[func_reg]
                if not 0 <= findex < len(table):
                    raise MachineError(f"indirect call through bad index {findex!r}")
                target = functions[table[findex]]
            if len(frames) >= max_call_depth:
                raise MachineError("call stack overflow")
            if nargs > target.num_params:
                raise MachineError(f"{fname}: too many args for {target.name}")
            frame.index = next_index
            new_frame = Frame(target, frame_base(len(frames), frame_words), dst)
            new_regs = new_frame.regs
            for pos, value in imm_args:
                new_regs[pos] = value
            regs = frame.regs
            for pos, reg in reg_args:
                new_regs[pos] = regs[reg]
            frames.append(new_frame)
            machine.depth = len(frames)
            tracer = machine.tracer
            if tracer is not None:
                tracer.on_enter(target.name, site)
                tracer.on_block(target.name, new_frame.block_name)
            return True

        return step

    if kind == Kind.RET:
        rv = instr.value
        rv_imm = rv is not None and rv.__class__ is Imm
        rv_value = rv.value if rv_imm else None

        def step(frame):
            if iline != cell[0]:
                cell[0] = iline
                if not icache_access(addr):
                    counts[IC_MISS] += 1
                    counts[CYCLES] += icache_penalty
            counts[IC_REF] += 1
            counts[INSTRS] += icost
            counts[CYCLES] += icost
            if rv is None:
                value = None
            elif rv_imm:
                value = rv_value
            else:
                value = frame.regs[rv]
            frames.pop()
            machine.depth = len(frames)
            if frame.is_signal:
                machine._signal_depth -= 1
                machine._next_signal_at = counts[INSTRS] + machine._signal_period
                if machine.cct_runtime is not None:
                    machine.cct_runtime.on_signal_return(machine)
            tracer = machine.tracer
            if tracer is not None:
                tracer.on_exit(fname, value)
            if not frames:
                machine._return_value = value
            else:
                if frame.ret_reg is not None and not frame.is_signal:
                    frames[-1].regs[frame.ret_reg] = 0 if value is None else value
            return True

        return step

    body = _make_body(machine, counts, instr, next_index, fname, Frame, MachineError)

    def step(frame):
        if iline != cell[0]:
            cell[0] = iline
            if not icache_access(addr):
                counts[IC_MISS] += 1
                counts[CYCLES] += icache_penalty
        counts[IC_REF] += 1
        counts[INSTRS] += icost
        counts[CYCLES] += icost
        return body(frame)

    return step


def _make_body(machine, counts, instr, next_index: int, fname: str, Frame, MachineError):
    """Post-fetch behaviour of one non-inlined, non-fused instruction."""
    kind = instr.kind
    config = machine.config
    frames = machine._frames
    functions = machine.program.functions

    if kind == Kind.SETJMP:
        jmpbufs = machine._jmpbufs
        dst, env = instr.dst, instr.env

        def body(frame):
            handle = len(jmpbufs)
            jmpbufs.append((len(frames), frame.block_name, next_index, dst))
            regs = frame.regs
            regs[env] = handle
            regs[dst] = 0
            return False

        return body

    if kind == Kind.LONGJMP:
        jmpbufs = machine._jmpbufs
        env, jv = instr.env, instr.value
        jv_imm = jv.__class__ is Imm
        jv_value = jv.value if jv_imm else None

        def body(frame):
            regs = frame.regs
            handle = regs[env]
            if not 0 <= handle < len(jmpbufs):
                raise MachineError(f"longjmp through bad handle {handle!r}")
            depth, block_name, resume_index, dst_reg = jmpbufs[handle]
            if depth > len(frames):
                raise MachineError("longjmp to a dead frame")
            value = jv_value if jv_imm else regs[jv]
            if value == 0:
                value = 1
            tracer = machine.tracer
            while len(frames) > depth:
                dead = frames.pop()
                if tracer is not None:
                    tracer.on_exit(dead.function.name, None)
            machine.depth = len(frames)
            if machine.cct_runtime is not None:
                machine.cct_runtime.unwind_to(machine, len(frames))
            target = frames[-1]
            target.block_name = block_name
            target.index = resume_index
            target.regs[dst_reg] = value
            if tracer is not None:
                tracer.on_block(target.function.name, block_name)
            return True

        return body

    if kind == Kind.PATH_COMMIT:

        def body(frame, instr=instr):
            machine._require_path_runtime().commit(machine, frame, instr)
            return False

        return body

    if kind == Kind.HWC_ACCUM:

        def body(frame, instr=instr):
            machine._require_path_runtime().accumulate(machine, frame, instr)
            return False

        return body

    if kind == Kind.EDGE_COUNT:

        def body(frame, instr=instr):
            machine._require_path_runtime().edge_count(machine, instr)
            return False

        return body

    if kind == Kind.K_HWC_CYCLE:

        def body(frame, instr=instr):
            machine._require_path_runtime().k_cycle(machine, frame, instr)
            return False

        return body

    if kind == Kind.K_HWC_EXIT:

        def body(frame, instr=instr):
            machine._require_path_runtime().k_exit(machine, frame, instr)
            return False

        return body

    if kind == Kind.HWC_ZERO:
        pic = machine.pic

        def body(frame):
            pic.write_zero()
            pic.read()
            return False

        return body

    if kind == Kind.HWC_SAVE:
        pic = machine.pic
        probe_write = machine.probe_write
        save_off = (config.frame_words - 1) * WORD

        def body(frame):
            frame.saved_pic = pic.read()
            probe_write(frame.base_addr + save_off, frame.saved_pic[0])
            return False

        return body

    if kind == Kind.HWC_RESTORE:
        pic = machine.pic
        probe_read = machine.probe_read
        save_off = (config.frame_words - 1) * WORD

        def body(frame):
            probe_read(frame.base_addr + save_off)
            pic.write_values(*frame.saved_pic)
            pic.read()
            return False

        return body

    if kind == Kind.CCT_ENTER:

        def body(frame, instr=instr):
            machine._require_cct_runtime().enter(machine, frame, instr)
            return False

        return body

    if kind == Kind.CCT_CALL:

        def body(frame, instr=instr):
            machine._require_cct_runtime().before_call(machine, frame, instr)
            return False

        return body

    if kind == Kind.CCT_EXIT:

        def body(frame, instr=instr):
            machine._require_cct_runtime().exit(machine, frame, instr)
            return False

        return body

    if kind == Kind.CCT_PROBE:

        def body(frame, instr=instr):
            machine._require_cct_runtime().probe(machine, frame, instr)
            return False

        return body

    def body(frame):  # pragma: no cover - validation rejects unknown kinds
        raise MachineError(f"unimplemented instruction kind {kind!r}")

    return body


# ---------------------------------------------------------------------------
# Segment code generation
# ---------------------------------------------------------------------------


class _SegmentWriter:
    """Emits one segment's specialized source, batching static costs.

    Fetch costs (``IC_REF``/``INSTRS``/``CYCLES``/``FP_STALL``) of
    consecutive inlined instructions accumulate into partial sums that
    are flushed before the next *observer* — a store (its store-buffer
    push reads ``CYCLES``), a fused probe body that reads a counter
    (profiling stores and PIC accesses; the pure gCSP assignment of
    ``CctCall`` is no observer and batches through), a closure handler
    (non-fused hooks read the PIC counters and do their own cost
    accounting), a control transfer, or segment end.  I-cache probes
    are emitted in instruction order at line-crossing addresses only;
    fused probes keep the static line tracking alive, only closure
    handlers reset it.
    """

    def __init__(self, machine, fname: str, alloc_link: Callable[[], int]):
        self.lines: List[str] = []
        self.machine = machine
        self.fname = fname
        self.alloc_link = alloc_link
        #: Per-segment maker parameters beyond the fixed ones, in
        #: emission order: ("h", instr_index) handler closures,
        #: ("lk", n) successor-link cells, and ("pb", spec) runtime
        #: objects fused probes bind (tables, PIC methods, CCT state).
        self.extras: List[Tuple[str, object]] = []
        #: spec -> generated parameter name, for per-segment dedup.
        self._params: Dict[Tuple, str] = {}
        self.config = machine.config
        self.penalty = machine.config.icache_miss_penalty
        self.write_allocate = machine.config.dcache_write_allocate
        self.fp_latencies = machine.config.fp_latencies
        # pending cost sums
        self.n = 0
        self.icost = 0
        self.fp = 0
        # pending memory-event sums: program loads/stores contribute
        # LOADS/DC_READ (resp. STORES/DC_WRITE) unconditionally, and no
        # operation between flushes reads those counters, so the
        # increments batch exactly like fetch costs do.  (Fused probe
        # traffic stays unbatched: probe bodies interleave PIC reads.)
        self.loads = 0
        self.stores = 0
        # I-cache line of the previous emitted instruction; None until
        # the segment head's dynamic check has run.
        self.prev_iline: Optional[int] = None
        self.cell_stale = False

    def param(self, *spec) -> str:
        """Parameter name for a bind-time object described by ``spec``."""
        name = self._params.get(spec)
        if name is None:
            name = f"_pb{len(self._params)}"
            self._params[spec] = name
            self.extras.append(("pb", spec))
        return name

    def emit(self, line: str, indent: int = 2) -> None:
        self.lines.append("    " * indent + line)

    # -- fetch ----------------------------------------------------------------

    def fetch(self, addr: int, iline: int, icost: int) -> None:
        if self.prev_iline is None:
            # Dynamic head check: the previous dynamic instruction ran
            # in another segment (or another block entirely).
            self.emit(f"if {iline} != _il[0]:")
            self.emit(f"    if not _ica({addr}):")
            self.emit(f"        counts[{_IC_MISS}] += 1")
            self.emit(f"        counts[{_CYCLES}] += {self.penalty}")
        elif iline != self.prev_iline:
            self.emit(f"if not _ica({addr}):")
            self.emit(f"    counts[{_IC_MISS}] += 1")
            self.emit(f"    counts[{_CYCLES}] += {self.penalty}")
        self.prev_iline = iline
        self.cell_stale = True
        self.n += 1
        self.icost += icost

    def flush_costs(self) -> None:
        if self.n:
            self.emit(f"counts[{_IC_REF}] += {self.n}")
            self.emit(f"counts[{_INSTRS}] += {self.icost}")
            self.emit(f"counts[{_CYCLES}] += {self.icost + self.fp}")
            if self.fp:
                self.emit(f"counts[{_FP_STALL}] += {self.fp}")
            self.n = self.icost = self.fp = 0
        if self.loads:
            self.emit(f"counts[{_LOADS}] += {self.loads}")
            self.emit(f"counts[{_DC_READ}] += {self.loads}")
            self.loads = 0
        if self.stores:
            self.emit(f"counts[{_STORES}] += {self.stores}")
            self.emit(f"counts[{_DC_WRITE}] += {self.stores}")
            self.stores = 0

    def sync_cell(self) -> None:
        """Bring the machine's I-cache line state up to date (needed
        before anything that performs its own dynamic head check)."""
        if self.cell_stale:
            self.emit(f"_il[0] = {self.prev_iline}")
            self.cell_stale = False

    # -- operand helpers -------------------------------------------------------

    def rd(self, reg: int) -> str:
        """Source expression that reads architectural register ``reg``.

        The trace writer overrides this (and :meth:`wr`/:meth:`rw`) to
        keep registers resident in Python locals across former block
        boundaries; every generated register access must go through
        these three methods for that to be sound.
        """
        return f"regs[{reg}]"

    def wr(self, reg: int) -> str:
        """Target expression that writes architectural register ``reg``."""
        return f"regs[{reg}]"

    def rw(self, reg: int) -> str:
        """Target of a read-modify-write (``+=``) on register ``reg``."""
        return f"regs[{reg}]"

    def _operand(self, value) -> str:
        if value.__class__ is Imm:
            return _literal(value.value)
        return self.rd(value)

    # -- instruction bodies ----------------------------------------------------

    def inline(self, instr, addr: int, iline: int) -> None:
        kind = instr.kind
        self.fetch(addr, iline, instr.icost)
        if kind == Kind.BINOP:
            expr = _INT_OP_FMT[instr.op].format(
                a=self.rd(instr.a), b=self._operand(instr.b)
            )
            self.emit(f"{self.wr(instr.dst)} = {expr}")
        elif kind == Kind.CONST:
            self.emit(f"{self.wr(instr.dst)} = {_literal(instr.value)}")
        elif kind == Kind.MOVE:
            self.emit(f"{self.wr(instr.dst)} = {self.rd(instr.src)}")
        elif kind == Kind.FBINOP:
            expr = _FLOAT_OP_FMT[instr.op].format(
                a=self.rd(instr.a), b=self._operand(instr.b)
            )
            self.emit(f"{self.wr(instr.dst)} = {expr}")
            self.fp += self.fp_latencies[instr.op] - 1
        elif kind == Kind.LOAD or kind == Kind.FRAME_LOAD:
            if kind == Kind.LOAD:
                offset = f" + {instr.offset}" if instr.offset else ""
                self.emit(f"_a = {self.rd(instr.base)}{offset}")
            else:
                self.emit(f"_a = frame.base_addr + {instr.slot * WORD}")
            self.loads += 1
            self.emit("if not _dca(_a):")
            self.emit(f"    counts[{_DC_READ_MISS}] += 1")
            self.emit(f"    counts[{_DC_MISS}] += 1")
            self.emit(f"    counts[{_CYCLES}] += _rmc(_a)")
            self.emit("    _nms(_a)")
            self.emit(f"{self.wr(instr.dst)} = _mrd(_a, 0)")
        elif kind == Kind.STORE or kind == Kind.FRAME_STORE:
            # The store-buffer push reads CYCLES: flush pending costs
            # (this store's fetch and its STORES/DC_WRITE bump
            # included) before the body runs.
            if kind == Kind.STORE:
                value = self._operand(instr.src)
                offset = f" + {instr.offset}" if instr.offset else ""
                self.stores += 1
                self.flush_costs()
                self.emit(f"_a = {self.rd(instr.base)}{offset}")
            else:
                value = self.rd(instr.src)
                self.stores += 1
                self.flush_costs()
                self.emit(f"_a = frame.base_addr + {instr.slot * WORD}")
            probe = "_dca(_a)" if self.write_allocate else "_dca(_a, False)"
            self.emit(f"if not {probe}:")
            self.emit(f"    counts[{_DC_WRITE_MISS}] += 1")
            self.emit(f"    counts[{_DC_MISS}] += 1")
            self.emit("    _nms(_a)")
            self.emit("_sbp()")
            self.emit(f"_mwr(_a, {value})")
        elif kind == Kind.ALLOC:
            self.emit(f"{self.wr(instr.dst)} = _halloc({self._operand(instr.size)})")
        elif kind == Kind.PATH_RESET:
            self.emit(f"{self.wr(instr.reg)} = 0")
        elif kind == Kind.PATH_ADD:
            self.emit(f"{self.rw(instr.reg)} += {_literal(instr.value)}")
        elif kind == Kind.K_PATH_ADD:
            self.emit(f"_r = {self.rd(instr.reg)}")
            self.emit(
                f"{self.wr(instr.reg)} = _r + {_literal(instr.values)}[_r % {instr.k}]"
            )
        elif kind == Kind.BR:
            self.flush_costs()
            self.sync_cell()
            self._transfer(instr.target, indent=2)
        elif kind == Kind.CBR:
            self.flush_costs()
            self.sync_cell()
            mp = self.config.mispredict_penalty
            self.emit(f"counts[{_BRANCHES}] += 1")
            self.emit(f"if {self.rd(instr.cond)} != 0:")
            self.emit(f"    counts[{_BR_TAKEN}] += 1")
            self.emit(f"    if not _prd({addr}, True):")
            self.emit(f"        counts[{_BR_MISPRED}] += 1")
            self.emit(f"        counts[{_CYCLES}] += {mp}")
            self._transfer(instr.then, indent=3)
            self.emit("else:")
            self.emit(f"    if not _prd({addr}, False):")
            self.emit(f"        counts[{_BR_MISPRED}] += 1")
            self.emit(f"        counts[{_CYCLES}] += {mp}")
            self._transfer(instr.els, indent=3)
        else:  # pragma: no cover - guarded by _INLINE_KINDS
            raise AssertionError(f"{kind!r} is not an inline kind")

    def _transfer(self, target: str, indent: int) -> None:
        # Branch targets stay within the function, so the successor's
        # decoded block is returned directly (resolved lazily through a
        # per-site link cell) and the run loop skips the cache lookup.
        n = self.alloc_link()
        self.extras.append(("lk", n))
        self.emit(f"frame.block_name = {target!r}", indent)
        self.emit("frame.index = 0", indent)
        self.emit("_t = machine.tracer", indent)
        self.emit("if _t is not None:", indent)
        self.emit(f"    _t.on_block({self.fname!r}, {target!r})", indent)
        self.emit(f"return _lk{n}[0] or _rs(_lk{n}, {target!r})", indent)

    # -- fused instrumentation probes ------------------------------------------

    def probe_read(self, addr: str, indent: int = 2) -> None:
        """``Machine.probe_read`` traffic with the value discarded.

        The simulated memory read itself is skipped: ``MemoryMap.read``
        is a pure dictionary lookup, so dropping it changes no counter
        and no state.
        """
        self.emit(f"counts[{_LOADS}] += 1", indent)
        self.emit(f"counts[{_DC_READ}] += 1", indent)
        self.emit(f"if not _dca({addr}):", indent)
        self.emit(f"    counts[{_DC_READ_MISS}] += 1", indent)
        self.emit(f"    counts[{_DC_MISS}] += 1", indent)
        self.emit(f"    counts[{_CYCLES}] += _rmc({addr})", indent)
        self.emit(f"    _nms({addr})", indent)

    def probe_write(self, addr: str, value: str, indent: int = 2) -> None:
        """``Machine.probe_write`` traffic: miss probe, drain, store."""
        miss = f"_dca({addr})" if self.write_allocate else f"_dca({addr}, False)"
        self.emit(f"counts[{_STORES}] += 1", indent)
        self.emit(f"counts[{_DC_WRITE}] += 1", indent)
        self.emit(f"if not {miss}:", indent)
        self.emit(f"    counts[{_DC_WRITE_MISS}] += 1", indent)
        self.emit(f"    counts[{_DC_MISS}] += 1", indent)
        self.emit(f"    _nms({addr})", indent)
        self.emit("_sbp()", indent)
        self.emit(f"_mwr({addr}, {value})", indent)

    def fuse(self, plan: Tuple, instr, index: int, addr: int, iline: int) -> None:
        """Emit one instrumentation hook inline (plan from _fuse_plan).

        Every fused body except ``CctCall`` observes counters (its
        profiling stores drain the store buffer; PIC accesses latch
        event counts), so pending fetch costs flush first — exactly the
        state the simple engine has charged when the hook runs.
        ``CctCall`` touches no counter and batches straight through.
        """
        self.fetch(addr, iline, instr.icost)
        op = plan[0]
        if op != "cct_call":
            self.flush_costs()
        if op == "commit":
            self._fuse_commit(instr, plan[1])
        elif op == "accum":
            self._fuse_accum(instr, plan[1])
        elif op == "k_cycle":
            self._fuse_kcycle(instr, plan[1])
        elif op == "k_exit":
            self._fuse_kexit(instr, plan[1])
        elif op == "edge":
            self._fuse_edge(instr, plan[1])
        elif op == "hwc_zero":
            self.emit(f"{self.param('picz')}()")
            self.emit(f"{self.param('picr')}()")
        elif op == "hwc_save":
            self.emit(f"_sv = {self.param('picr')}()")
            self.emit("frame.saved_pic = _sv")
            self.emit(f"_a = frame.base_addr + {(self.config.frame_words - 1) * WORD}")
            self.probe_write("_a", "_sv[0]")
        elif op == "hwc_restore":
            self.emit(f"_a = frame.base_addr + {(self.config.frame_words - 1) * WORD}")
            self.probe_read("_a")
            self.emit("_sv = frame.saved_pic")
            self.emit(f"{self.param('picw')}(_sv[0], _sv[1])")
            self.emit(f"{self.param('picr')}()")
        elif op == "cct_call":
            rt = self.param("cct")
            sh = self.param("cctsh")
            slot = instr.slot if self.machine.cct_runtime.by_site else 0
            self.emit(
                f"{rt}.gcsp = (({sh}[-1].record if {sh} else "
                f"{self.param('cctroot')}), {slot})"
            )
        elif op == "cct_enter":
            self._fuse_cct_enter(instr, index)
        elif op == "cct_exit":
            self._fuse_cct_exit()
        else:  # pragma: no cover - plans come from _fuse_plan
            raise AssertionError(f"unknown fuse plan {plan!r}")

    def _bump(self, tc: str, index: str, addr: str, indent: int) -> None:
        """CounterTable.bump's in-range body: RMW traffic + dict update."""
        self.probe_read(addr, indent)
        self.emit(f"_v = {tc}.get({index}, 0) + 1", indent)
        self.probe_write(addr, "_v", indent)
        self.emit(f"{tc}[{index}] = _v", indent)

    def _fuse_commit(self, instr, table) -> None:
        tc = self.param("tblc", instr.table)
        self.emit(f"_i = {self.rd(instr.reg)} + {instr.end}")
        self.emit(f"if 0 <= _i < {table.capacity}:")
        self.emit(f"    _a = {table.base} + _i * {table.slot_words * WORD}")
        self._bump(tc, "_i", "_a", 3)
        self.emit("else:")
        self.emit(f"    {self.param('tbl', instr.table)}.out_of_range += 1")
        if instr.reset_to is not None:
            self.emit(f"{self.wr(instr.reg)} = {instr.reset_to}")

    def _fuse_accum(self, instr, table) -> None:
        tc = self.param("tblc", instr.table)
        tm = self.param("tblm", instr.table)
        pr = self.param("picr")
        self.emit(f"_p = {pr}()")
        self.emit(f"_i = {self.rd(instr.reg)} + {instr.end}")
        self.emit(f"if 0 <= _i < {table.capacity}:")
        self.emit(f"    _a = {table.base} + _i * {table.slot_words * WORD}")
        self._bump(tc, "_i", "_a", 3)
        self.emit(f"    _m = {tm}.get(_i)")
        self.emit("    if _m is None:")
        self.emit("        _m = [0, 0]")
        self.emit(f"        {tm}[_i] = _m")
        self.emit(f"    _a += {WORD}")
        self.probe_read("_a", 3)
        self.emit("    _m[0] += _p[0]")
        self.probe_write("_a", "_m[0]", 3)
        self.emit(f"    _a += {WORD}")
        self.probe_read("_a", 3)
        self.emit("    _m[1] += _p[1]")
        self.probe_write("_a", "_m[1]", 3)
        self.emit("else:")
        self.emit(f"    {self.param('tbl', instr.table)}.out_of_range += 1")
        if instr.rezero:
            self.emit(f"{self.param('picz')}()")
            self.emit(f"{pr}()")
        if instr.reset_to is not None:
            self.emit(f"{self.wr(instr.reg)} = {instr.reset_to}")

    def _accum_slots(self, instr, table, indent: int) -> None:
        """The in-range accumulate body with ``_i`` and ``_p`` already set.

        Mirrors :meth:`_fuse_accum`'s interior, parameterized on indent
        so the k-iteration probes can nest it under their layer branch.
        """
        tc = self.param("tblc", instr.table)
        tm = self.param("tblm", instr.table)
        self.emit(f"_a = {table.base} + _i * {table.slot_words * WORD}", indent)
        self._bump(tc, "_i", "_a", indent)
        self.emit(f"_m = {tm}.get(_i)", indent)
        self.emit("if _m is None:", indent)
        self.emit("    _m = [0, 0]", indent)
        self.emit(f"    {tm}[_i] = _m", indent)
        self.emit(f"_a += {WORD}", indent)
        self.probe_read("_a", indent)
        self.emit("_m[0] += _p[0]", indent)
        self.probe_write("_a", "_m[0]", indent)
        self.emit(f"_a += {WORD}", indent)
        self.probe_read("_a", indent)
        self.emit("_m[1] += _p[1]", indent)
        self.probe_write("_a", "_m[1]", indent)

    def _fuse_kcycle(self, instr, table) -> None:
        # Mirrors ProfilingRuntime.k_cycle exactly: layer test first, the
        # commit arm repeating the accumulate order (PIC read, index,
        # table update, rezero, packed restart).
        pr = self.param("picr")
        k = instr.k
        self.emit(f"_r = {self.rd(instr.reg)}")
        self.emit(f"_l = _r % {k}")
        self.emit(f"if _l != {k - 1}:")
        self.emit(f"    {self.wr(instr.reg)} = _r + {_literal(instr.cross)}[_l]")
        self.emit("else:")
        self.emit(f"    _p = {pr}()")
        self.emit(f"    _i = (_r - _l) // {k} + {instr.end}")
        self.emit(f"    if 0 <= _i < {table.capacity}:")
        self._accum_slots(instr, table, 4)
        self.emit("    else:")
        self.emit(f"        {self.param('tbl', instr.table)}.out_of_range += 1")
        self.emit(f"    {self.param('picz')}()")
        self.emit(f"    {pr}()")
        self.emit(f"    {self.wr(instr.reg)} = {instr.start}")

    def _fuse_kexit(self, instr, table) -> None:
        # Mirrors ProfilingRuntime.k_exit: layer-indexed end value, no
        # rezero, no reset.
        pr = self.param("picr")
        self.emit(f"_p = {pr}()")
        self.emit(f"_r = {self.rd(instr.reg)}")
        self.emit(f"_l = _r % {instr.k}")
        self.emit(f"_i = (_r - _l) // {instr.k} + {_literal(instr.values)}[_l]")
        self.emit(f"if 0 <= _i < {table.capacity}:")
        self._accum_slots(instr, table, 3)
        self.emit("else:")
        self.emit(f"    {self.param('tbl', instr.table)}.out_of_range += 1")

    def _fuse_edge(self, instr, table) -> None:
        # The edge index is a compile-time constant, so the range check
        # and the slot address both resolve at decode time.
        if 0 <= instr.edge < table.capacity:
            addr = table.base + instr.edge * table.slot_words * WORD
            self._bump(self.param("tblc", instr.table), str(instr.edge), str(addr), 2)
        else:
            self.emit(f"{self.param('tbl', instr.table)}.out_of_range += 1")

    def _fuse_cct_enter(self, instr, index: int) -> None:
        rt = self.param("cct")
        sh = self.param("cctsh")
        st = self.param("cctst")
        collect_hw = self.machine.cct_runtime.collect_hw
        self.emit(f"{st}.enters += 1")
        self.emit(f"_g = {rt}.gcsp")
        self.emit("_pnt = _g[0]")
        self.emit("_a = _pnt.slot_addr(_g[1])")
        self.probe_read("_a")
        self.emit("_s = _pnt.slots[_g[1]]")
        self.emit(f"if _s.__class__ is _CRec and _s.id == {instr.proc!r}:")
        self.emit("    _c = _s")
        self.emit(f"    {st}.fast_hits += 1")
        self.emit("else:")
        self.emit(f"    _c = {self.param('eslow', index)}(_pnt, _g[1], _a, _s)")
        self.emit(f"_a = frame.base_addr + {GCSP_SLOT * WORD}")
        self.probe_write("_a", "0")
        self.emit("_e = _SE(machine.depth, _c, _g)")
        if collect_hw:
            self.emit(f"_p = {self.param('picr')}()")
            self.emit("_e.pic0 = _p[0]")
            self.emit("_e.pic1 = _p[1]")
            self.emit(f"counts[{_INSTRS}] += 3")
            self.emit(f"counts[{_CYCLES}] += 3")
        self.emit(f"{sh}.append(_e)")
        self.emit(f"_a = _c.addr + {2 * WORD}")
        self.probe_read("_a")
        self.emit("_m = _c.metrics")
        self.emit("_m[0] += 1")
        self.probe_write("_a", "_m[0]")

    def _fuse_cct_exit(self) -> None:
        rt = self.param("cct")
        sh = self.param("cctsh")
        collect_hw = self.machine.cct_runtime.collect_hw
        self.emit(f"if not {sh}:")
        self.emit('    raise RuntimeError("CCT exit with empty shadow stack")')
        self.emit(f"_e = {sh}.pop()")
        self.emit("if _e.depth != machine.depth:")
        self.emit(
            "    raise RuntimeError(f\"CCT exit at depth {machine.depth}, "
            "expected {_e.depth}; enter/exit hooks are unbalanced\")"
        )
        self.emit(f"_a = frame.base_addr + {GCSP_SLOT * WORD}")
        self.probe_read("_a")
        self.emit(f"{rt}.gcsp = _e.saved_gcsp")
        if collect_hw:
            self.emit(f"_p = {self.param('picr')}()")
            self.emit("_c = _e.record")
            self.emit(f"_a = _c.addr + {3 * WORD}")
            self.probe_read("_a")
            self.emit("_m = _c.metrics")
            self.emit(f"_m[1] += (_p[0] - _e.pic0) % {1 << 32}")
            self.probe_write("_a", "_m[1]")
            self.emit(f"_a += {WORD}")
            self.probe_read("_a")
            self.emit(f"_m[2] += (_p[1] - _e.pic1) % {1 << 32}")
            self.probe_write("_a", "_m[2]")
            self.emit(f"counts[{_INSTRS}] += 8")
            self.emit(f"counts[{_CYCLES}] += 8")

    def handler_call(self, handler_index: int, transfers: bool) -> None:
        """Invoke a closure handler (it does its own fetch/cost work)."""
        self.flush_costs()
        self.sync_cell()
        self.prev_iline = None  # handlers may transfer through other lines
        self.extras.append(("h", handler_index))
        if transfers:
            self.emit(f"return _h{handler_index}(frame)")
        else:
            self.emit(f"_h{handler_index}(frame)")

    def close(self) -> None:
        self.flush_costs()
        self.sync_cell()
        self.emit("return False")


#: Handler kinds that always transfer control when they return.
_TRANSFER_HANDLERS = frozenset({Kind.CALL, Kind.ICALL, Kind.RET, Kind.LONGJMP})

#: Instrumentation kinds whose fusibility depends on the path runtime.
_TABLE_KINDS = frozenset(
    {
        Kind.PATH_COMMIT,
        Kind.HWC_ACCUM,
        Kind.EDGE_COUNT,
        Kind.K_HWC_CYCLE,
        Kind.K_HWC_EXIT,
    }
)
#: CCT hooks the generator can fuse (CctProbe stays a closure: rare,
#: and its interval restart shares no structure with enter/exit).
_CCT_FUSED_KINDS = frozenset({Kind.CCT_ENTER, Kind.CCT_CALL, Kind.CCT_EXIT})
_CCT_ALL_KINDS = frozenset(
    {Kind.CCT_ENTER, Kind.CCT_CALL, Kind.CCT_EXIT, Kind.CCT_PROBE}
)

_TABLE_PLAN_OPS = {
    Kind.PATH_COMMIT: "commit",
    Kind.HWC_ACCUM: "accum",
    Kind.EDGE_COUNT: "edge",
    Kind.K_HWC_CYCLE: "k_cycle",
    Kind.K_HWC_EXIT: "k_exit",
}

#: Table kinds whose fused body hard-codes two metric slots.
_METRIC_TABLE_KINDS = frozenset({Kind.HWC_ACCUM, Kind.K_HWC_CYCLE, Kind.K_HWC_EXIT})
_CCT_PLAN_OPS = {
    Kind.CCT_ENTER: "cct_enter",
    Kind.CCT_CALL: "cct_call",
    Kind.CCT_EXIT: "cct_exit",
}


def _fuse_plan(machine, instr) -> Optional[Tuple]:
    """How to fuse ``instr`` into generated source, or None for a closure.

    Array-table commits/accumulates/edge bumps fuse with their geometry
    as literals; hash tables, per-context tables (``table == -1``) and
    missing runtimes fall back.  PIC sequences always fuse.  CCT
    enter/call/exit fuse when a runtime is attached (the entry slow
    path still runs in the runtime, through a per-site closure).
    """
    kind = instr.kind
    if kind == Kind.HWC_ZERO:
        return ("hwc_zero",)
    if kind == Kind.HWC_SAVE:
        return ("hwc_save",)
    if kind == Kind.HWC_RESTORE:
        return ("hwc_restore",)
    if kind in _TABLE_KINDS:
        runtime = machine.path_runtime
        if runtime is None or not 0 <= instr.table < len(runtime.tables):
            return None
        table = runtime.tables[instr.table]
        if table.kind is not TableKind.ARRAY:
            return None
        if kind in _METRIC_TABLE_KINDS and table.metric_slots != 2:
            return None
        return (_TABLE_PLAN_OPS[kind], table)
    if kind in _CCT_FUSED_KINDS:
        if machine.cct_runtime is None:
            return None
        return (_CCT_PLAN_OPS[kind],)
    return None


def _config_key(config) -> Tuple:
    """The config constants baked into generated segment source."""
    return (
        config.icache_line,
        config.icache_miss_penalty,
        config.mispredict_penalty,
        config.dcache_write_allocate,
        config.frame_words,
        tuple(sorted(config.fp_latencies.items())),
    )


def _probe_key(machine, instrs) -> Tuple:
    """Fingerprint of everything fused probes bake into source.

    Part of the block-level compile cache key: two machines share a
    compiled block only when every instrumentation hook would fuse the
    same way with the same literals (table geometry, CCT flags).
    Uninstrumented blocks fingerprint to ``()`` and share universally.
    """
    parts = []
    path_runtime = machine.path_runtime
    cct_runtime = machine.cct_runtime
    for instr in instrs:
        kind = instr.kind
        if kind in _TABLE_KINDS:
            if path_runtime is None or not 0 <= instr.table < len(path_runtime.tables):
                parts.append(("slow",))
            else:
                table = path_runtime.tables[instr.table]
                parts.append(
                    (table.kind.value, table.base, table.capacity, table.metric_slots)
                )
        elif kind in _CCT_ALL_KINDS:
            if cct_runtime is None:
                parts.append(("slow",))
            else:
                parts.append(("cct", cct_runtime.collect_hw, cct_runtime.by_site))
    return tuple(parts)


def _generate_block(machine, function, block, instrs, addrs):
    """Produce (source, code, segment starts) for one block.

    Pure in everything but ``instrs``/``addrs`` and the few config
    constants of :func:`_config_key`, so the result is cached on the
    block and shared by every machine simulating the same program.
    """
    fname = function.name
    line_bits = machine._icache_line_bits

    segments: List[Tuple[int, _SegmentWriter]] = []
    writer: Optional[_SegmentWriter] = None
    seg_start = 0
    seg_len = 0
    n_links = 0

    def alloc_link() -> int:
        nonlocal n_links
        n_links += 1
        return n_links - 1

    def begin(i: int) -> None:
        nonlocal writer, seg_start, seg_len
        writer = _SegmentWriter(machine, fname, alloc_link)
        seg_start = i
        seg_len = 0

    def end() -> None:
        nonlocal writer
        if writer is not None:
            segments.append((seg_start, writer))
            writer = None

    begin(0)
    for i, instr in enumerate(instrs):
        addr = addrs[i]
        iline = addr >> line_bits
        kind = instr.kind
        if writer is None:
            begin(i)
        if kind in _INLINE_KINDS:
            writer.inline(instr, addr, iline)
            seg_len += 1
            if kind == Kind.BR or kind == Kind.CBR:
                end()
            elif seg_len >= SEGMENT_CAP:
                writer.close()
                end()
        elif (plan := _fuse_plan(machine, instr)) is not None:
            # Fused instrumentation: stays inside the segment, keeps
            # the static I-cache line tracking, flushes costs only if
            # its body observes a counter (decided in fuse()).
            writer.fuse(plan, instr, i, addr, iline)
            seg_len += 1
            if seg_len >= SEGMENT_CAP:
                writer.close()
                end()
        else:
            transfers = kind in _TRANSFER_HANDLERS
            writer.handler_call(i, transfers)
            seg_len += 1
            if transfers or kind == Kind.SETJMP or seg_len >= SEGMENT_CAP:
                # Calls and setjmp are resume points: the next
                # instruction must start its own segment.
                if not transfers:
                    writer.close()
                end()
    if writer is not None:
        writer.close()
        end()

    starts = [start for start, _w in segments]
    seg_extras = [w.extras for _start, w in segments]

    # Assemble one module with a maker per segment.
    src_parts: List[str] = [f"# decoded {fname}.{block.name}"]
    for j, (start, seg_writer) in enumerate(segments):
        names = []
        n_probe = 0
        for t, v in seg_writer.extras:
            if t == "pb":
                # Probe params are named by first-use order (param()).
                names.append(f", _pb{n_probe}")
                n_probe += 1
            else:
                names.append(f", _{t}{v}")
        params = "".join(names)
        src_parts.append(
            f"def _make{j}(machine, counts, _il, _ica, _dca, _mrd, _mwr, _sbp, _nms, _rmc, _prd, _rs{params}):"
        )
        src_parts.append("    def _seg(frame):")
        src_parts.append("        regs = frame.regs")
        src_parts.extend(seg_writer.lines)
        src_parts.append("    return _seg")
    source = "\n".join(src_parts) + "\n"
    code = compile(source, f"<decoded {fname}.{block.name}>", "exec")
    return source, code, starts, seg_extras, n_links


def _resolve_probe_spec(machine, instrs, spec):
    """Bind one ("pb", spec) maker parameter to its runtime object."""
    tag = spec[0]
    if tag == "tbl":
        return machine.path_runtime.tables[spec[1]]
    if tag == "tblc":
        return machine.path_runtime.tables[spec[1]].counts
    if tag == "tblm":
        return machine.path_runtime.tables[spec[1]].metrics
    if tag == "picr":
        return machine.pic.read
    if tag == "picz":
        return machine.pic.write_zero
    if tag == "picw":
        return machine.pic.write_values
    if tag == "cct":
        return machine.cct_runtime
    if tag == "cctsh":
        return machine.cct_runtime.shadow
    if tag == "cctst":
        return machine.cct_runtime.stats
    if tag == "cctroot":
        return machine.cct_runtime.root
    if tag == "eslow":
        instr = instrs[spec[1]]
        runtime = machine.cct_runtime

        def enter_slow(
            parent,
            slot_index,
            slot_addr,
            slot,
            _rt=runtime,
            _machine=machine,
            _proc=instr.proc,
            _nslots=instr.nslots,
        ):
            return _rt._enter_slow(
                _machine, parent, slot_index, slot_addr, slot, _proc, _nslots
            )

        return enter_slow
    raise AssertionError(f"unknown probe spec {spec!r}")  # pragma: no cover


def decode_block(machine, function, block) -> DecodedBlock:
    """Compile one block into its step list (called once per block).

    The generated source and code object are cached on the block (they
    depend only on the instruction list, the block's base address,
    :func:`_config_key` constants, and the :func:`_probe_key`
    fingerprint of the attached runtimes); only the per-machine binding
    — the ``exec`` of segment makers plus the closure handlers and
    fused-probe objects — runs again for each machine.
    """
    fname = function.name
    instrs = block.instrs
    addrs = machine.layout.block_addrs[(fname, block.name)]
    counts = machine.counters.counts

    cache_key = (
        block.edit_gen,
        len(instrs),
        addrs[0] if addrs else 0,
        _config_key(machine.config),
        _probe_key(machine, instrs),
    )
    stats = machine.codegen_stats
    cached = block._decode_cache
    if cached is not None and cached[0] == cache_key:
        _key, source, code, starts, seg_extras, n_links = cached
        stats["source_cache_hits"] += 1
    else:
        source, code, starts, seg_extras, n_links = _generate_block(
            machine, function, block, instrs, addrs
        )
        block._decode_cache = (cache_key, source, code, starts, seg_extras, n_links)
        stats["source_cache_misses"] += 1
    stats["decoded_blocks"] += 1

    line_bits = machine._icache_line_bits
    # Closure handlers only for the instructions the generated source
    # actually calls (fused probes replaced the rest).
    handler_indices = {
        v for extras in seg_extras for t, v in extras if t == "h"
    }
    handlers: Dict[int, Callable] = {
        i: _make_handler(
            machine, counts, instrs[i], addrs[i], addrs[i] >> line_bits, i + 1, fname
        )
        for i in handler_indices
    }
    total_icost = sum(instr.icost for instr in instrs)

    # Per-machine successor-link cells; registered so invalidation can
    # reset them (a stale link would bypass the cache's validity check).
    cells = [[None] for _ in range(n_links)]
    machine._decode_links.extend(cells)

    def resolve_link(cell, block_name, _function=function):
        decoded = machine._decoded_block(_function, block_name)
        cell[0] = decoded
        return decoded

    namespace = machine._codegen_namespace()
    exec(code, namespace)

    resume: Dict[int, int] = {}
    steps: List[Callable] = []
    for j, start in enumerate(starts):
        maker = namespace[f"_make{j}"]
        resume[start] = j
        extras = []
        for t, v in seg_extras[j]:
            if t == "h":
                extras.append(handlers[v])
            elif t == "lk":
                extras.append(cells[v])
            else:
                extras.append(_resolve_probe_spec(machine, instrs, v))
        steps.append(
            maker(
                machine,
                counts,
                machine._iline,
                machine.icache.access,
                machine.dcache.access,
                machine.memory._store.get,
                machine.memory._store.__setitem__,
                machine._store_buffer_push,
                machine._note_miss,
                machine._read_miss_cycles,
                machine.predictor.predict_and_update,
                resolve_link,
                *extras,
            )
        )

    decoded = DecodedBlock(
        steps,
        resume,
        block.edit_gen,
        len(instrs),
        total_icost,
        source,
        (machine.path_runtime, machine.cct_runtime),
    )
    decoded.key = (fname, block.name)
    return decoded


# ---------------------------------------------------------------------------
# Outer run loop
# ---------------------------------------------------------------------------


def execute(machine):
    """Run ``machine`` to completion with the predecoded engine.

    Entry frames must already be pushed onto ``machine._frames`` (done
    by :meth:`Machine.run`).  Returns the program's return value.
    """
    from repro.machine.vm import MachineError

    machine._validate_decoded()
    counts = machine.counters.counts
    frames = machine._frames
    max_instructions = machine.config.max_instructions
    decoded_cache = machine._decoded
    signal_active = machine._signal_handler is not None
    INSTRS = _INSTRS

    while frames:
        if (
            signal_active
            and counts[INSTRS] >= machine._next_signal_at
            and machine._signal_depth == 0
        ):
            machine._deliver_signal()
        frame = frames[-1]
        function = frame.function
        decoded = decoded_cache.get((function.name, frame.block_name))
        if decoded is None:
            decoded = machine._decoded_block(function, frame.block_name)
        index = frame.index
        k = 0 if index == 0 else decoded.resume[index]
        steps = decoded.steps
        nsteps = decoded.nsteps
        while True:
            if counts[INSTRS] > max_instructions:
                raise MachineError(f"instruction budget exceeded ({max_instructions})")
            r = steps[k](frame)
            if r is True:
                # Call, return, or longjmp: the top frame (and with it
                # the current function) may have changed — full lookup.
                break
            if r is False:
                # Segment fell through to the next (cap split / setjmp
                # resume point); a block's last segment always transfers.
                k += 1
                if k >= nsteps:
                    raise MachineError(
                        f"{function.name}.{frame.block_name}: fell through block end"
                    )
                continue
            # Branch within the same frame: r is the successor's
            # decoded block, delivered through the transfer's link cell.
            decoded = r
            steps = decoded.steps
            nsteps = decoded.nsteps
            k = 0
            if (
                signal_active
                and counts[INSTRS] >= machine._next_signal_at
                and machine._signal_depth == 0
            ):
                machine._deliver_signal()
                break

    return machine._return_value


#: Names available to generated segment code (stable across blocks; the
#: machine builds one namespace and all decoded segments share it).
CODEGEN_GLOBALS = {
    "_idiv": _int_div,
    "_imod": _int_mod,
    "_fdiv": FLOAT_OPS["fdiv"],
    "min": min,
    "max": max,
    # Fused CCT entry protocol: the shadow-entry record and the
    # CallRecord class for the generated tag-0 identity test.
    "_SE": _ShadowEntry,
    "_CRec": CallRecord,
}
