"""Cache simulators: direct-mapped (L1 D) and set-associative (L1 I).

Both expose ``access(address) -> hit`` plus statistics.  The
direct-mapped variant is specialized (one tag per set, no LRU state)
because the interpreter calls it on every load and store.
"""

from __future__ import annotations

from typing import List


class DirectMappedCache:
    """One tag per set; a 16KB/32B instance has 512 sets (paper §6.4.1)."""

    __slots__ = ("line", "sets", "_line_bits", "_set_mask", "tags", "accesses", "misses")

    def __init__(self, size: int, line: int):
        if size % line:
            raise ValueError("cache size must be a multiple of the line size")
        self.line = line
        self.sets = size // line
        if self.sets & (self.sets - 1) or line & (line - 1):
            raise ValueError("sets and line size must be powers of two")
        self._line_bits = line.bit_length() - 1
        self._set_mask = self.sets - 1
        self.tags: List[int] = [-1] * self.sets
        self.accesses = 0
        self.misses = 0

    def access(self, address: int, allocate: bool = True) -> bool:
        """Probe the cache; fill on miss when ``allocate``.  Returns hit?"""
        block = address >> self._line_bits
        index = block & self._set_mask
        self.accesses += 1
        if self.tags[index] == block:
            return True
        self.misses += 1
        if allocate:
            self.tags[index] = block
        return False

    def contains(self, address: int) -> bool:
        block = address >> self._line_bits
        return self.tags[block & self._set_mask] == block

    def set_index(self, address: int) -> int:
        """Which set an address maps to (used by conflict diagnostics)."""
        return (address >> self._line_bits) & self._set_mask

    def flush(self) -> None:
        self.tags = [-1] * self.sets


class SetAssociativeCache:
    """N-way with true LRU per set; used for the instruction cache."""

    __slots__ = ("line", "assoc", "sets", "_line_bits", "_set_mask", "ways", "accesses", "misses")

    def __init__(self, size: int, line: int, assoc: int):
        if size % (line * assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        self.line = line
        self.assoc = assoc
        self.sets = size // (line * assoc)
        if self.sets & (self.sets - 1) or line & (line - 1):
            raise ValueError("sets and line size must be powers of two")
        self._line_bits = line.bit_length() - 1
        self._set_mask = self.sets - 1
        # ways[set] is an LRU-ordered list, most recent last.
        self.ways: List[List[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int, allocate: bool = True) -> bool:
        block = address >> self._line_bits
        index = block & self._set_mask
        way = self.ways[index]
        self.accesses += 1
        # Fast path: re-touching the most recent line leaves LRU order
        # unchanged, and a membership scan beats catching ValueError on
        # the (frequent) miss path.
        if way:
            if way[-1] == block:
                return True
            if block in way:
                way.remove(block)
                way.append(block)
                return True
        self.misses += 1
        if allocate:
            way.append(block)
            if len(way) > self.assoc:
                way.pop(0)
        return False

    def contains(self, address: int) -> bool:
        block = address >> self._line_bits
        return block in self.ways[block & self._set_mask]

    def flush(self) -> None:
        self.ways = [[] for _ in range(self.sets)]
