"""Two-bit saturating-counter branch predictor.

Indexed by (a hash of) the branch's address.  States 0/1 predict
not-taken, 2/3 predict taken; the counter saturates toward the actual
outcome.  This is the classic Smith predictor mid-90s processors
shipped, enough to make branch-mispredict counts a meaningful metric
for instrumented vs. uninstrumented runs.
"""

from __future__ import annotations

from typing import List


class TwoBitPredictor:
    __slots__ = ("entries", "_mask", "table", "lookups", "mispredicts")

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        # Initialize to weakly-taken: loops predict well immediately,
        # which is the usual reset state.
        self.table: List[int] = [2] * entries
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, address: int, taken: bool) -> bool:
        """Returns True when the prediction was correct."""
        index = (address >> 2) & self._mask
        state = self.table[index]
        predicted_taken = state >= 2
        self.lookups += 1
        if taken:
            if state < 3:
                self.table[index] = state + 1
        else:
            if state > 0:
                self.table[index] = state - 1
        correct = predicted_taken == taken
        if not correct:
            self.mispredicts += 1
        return correct

    def flush(self) -> None:
        self.table = [2] * self.entries
        self.lookups = 0
        self.mispredicts = 0
