"""A reference interpreter: semantics only, no performance model.

An independent, deliberately simple implementation of the IR's
semantics (recursive, dictionary-registers, no caches, no counters,
no instrumentation support).  It exists purely for differential
testing: the cost-modelling VM in :mod:`repro.machine.vm` must compute
the same values on every program the reference can run — if the two
ever disagree, the bug is in whichever interpreter took the shortcut.

Unsupported on purpose (the reference refuses rather than guesses):
instrumentation pseudo-instructions, setjmp/longjmp, and signals.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.ir.function import Function, Program
from repro.ir.instructions import BINARY_OPS, FLOAT_OPS, Imm, Kind

Value = Union[int, float]


class ReferenceError(Exception):
    """The reference interpreter cannot (or refuses to) run this."""


class ReferenceInterpreter:
    """Evaluate a program by structural recursion over blocks."""

    def __init__(self, program: Program, max_steps: int = 5_000_000):
        self.program = program
        self.memory: Dict[int, Value] = {}
        self._heap_next = 0x0100_0000
        self.max_steps = max_steps
        self._steps = 0

    def run(self, *args: Value) -> Value:
        entry = self.program.functions.get(self.program.entry)
        if entry is None:
            raise ReferenceError(f"no entry {self.program.entry!r}")
        if len(args) != entry.num_params:
            raise ReferenceError("argument count mismatch")
        return self._call(entry, list(args))

    # -- internals ------------------------------------------------------------

    def _call(self, function: Function, args: List[Value]) -> Value:
        regs: Dict[int, Value] = {i: v for i, v in enumerate(args)}
        for i in range(function.num_regs):
            regs.setdefault(i, 0)
        block = function.entry
        index = 0
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise ReferenceError("step budget exceeded")
            instr = block.instrs[index]
            index += 1
            kind = instr.kind
            if kind == Kind.CONST:
                regs[instr.dst] = instr.value
            elif kind == Kind.MOVE:
                regs[instr.dst] = regs[instr.src]
            elif kind == Kind.BINOP:
                regs[instr.dst] = BINARY_OPS[instr.op](
                    regs[instr.a], self._operand(regs, instr.b)
                )
            elif kind == Kind.FBINOP:
                regs[instr.dst] = FLOAT_OPS[instr.op](
                    regs[instr.a], self._operand(regs, instr.b)
                )
            elif kind == Kind.LOAD:
                regs[instr.dst] = self.memory.get(regs[instr.base] + instr.offset, 0)
            elif kind == Kind.STORE:
                self.memory[regs[instr.base] + instr.offset] = self._operand(
                    regs, instr.src
                )
            elif kind == Kind.ALLOC:
                size = self._operand(regs, instr.size)
                regs[instr.dst] = self._heap_next
                self._heap_next += size * 8
            elif kind == Kind.BR:
                block = function.block(instr.target)
                index = 0
            elif kind == Kind.CBR:
                target = instr.then if regs[instr.cond] != 0 else instr.els
                block = function.block(target)
                index = 0
            elif kind == Kind.CALL:
                callee = self.program.functions[instr.callee]
                value = self._call(
                    callee, [self._operand(regs, a) for a in instr.args]
                )
                if instr.dst is not None:
                    regs[instr.dst] = value
            elif kind == Kind.ICALL:
                findex = regs[instr.func]
                callee = self.program.functions[self.program.function_table[findex]]
                value = self._call(
                    callee, [self._operand(regs, a) for a in instr.args]
                )
                if instr.dst is not None:
                    regs[instr.dst] = value
            elif kind == Kind.RET:
                if instr.value is None:
                    return 0
                return self._operand(regs, instr.value)
            else:
                raise ReferenceError(
                    f"reference interpreter does not support {kind!r}"
                )

    @staticmethod
    def _operand(regs: Dict[int, Value], operand) -> Value:
        if operand.__class__ is Imm:
            return operand.value
        return regs[operand]
