"""Memory map and backing store.

A flat byte-addressed space with 8-byte words, split into fixed
regions.  The interesting property for this reproduction is not the
values (a dict suffices) but the *addresses*: program data, activation
frames, profiling counter tables, and the CCT heap all live in one
address space and index the same direct-mapped L1 data cache, so
instrumentation data structures can — and do — conflict with the
program's own working set, exactly the perturbation §3.2 of the paper
worries about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

WORD = 8


@dataclass(frozen=True)
class Region:
    name: str
    base: int
    size: int

    @property
    def limit(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit


class MemoryMap:
    """Region layout plus the word-granular backing store."""

    def __init__(self, globals_words: int = 0):
        self.globals = Region("globals", 0x0001_0000, max(globals_words, 1) * WORD)
        self.heap = Region("heap", 0x0100_0000, 0x0700_0000)
        self.stack = Region("stack", 0x0800_0000, 0x0100_0000)
        #: Path/edge counter tables (the profiling runtime's arrays).
        self.profiling = Region("profiling", 0x1000_0000, 0x1000_0000)
        #: The CCT's demand-paged call-record heap (paper §4.2).
        self.cct = Region("cct", 0x2000_0000, 0x1000_0000)
        self._store: Dict[int, Union[int, float]] = {}
        self._heap_next = self.heap.base
        #: (base, limit, name) triples for the hot region_of scan.
        self._region_bounds = [
            (r.base, r.limit, r.name)
            for r in (self.globals, self.heap, self.stack, self.profiling, self.cct)
        ]

    # -- data ------------------------------------------------------------------

    def read(self, address: int) -> Union[int, float]:
        """Word read; uninitialized memory reads as zero."""
        return self._store.get(address, 0)

    def write(self, address: int, value: Union[int, float]) -> None:
        self._store[address] = value

    # -- allocation ---------------------------------------------------------------

    def heap_alloc(self, size_words: int) -> int:
        """Bump allocation, word aligned; raises on exhaustion."""
        if size_words < 0:
            raise ValueError("negative allocation")
        address = self._heap_next
        self._heap_next += size_words * WORD
        if self._heap_next > self.heap.limit:
            raise MemoryError("simulated heap exhausted")
        return address

    def heap_used(self) -> int:
        return self._heap_next - self.heap.base

    def frame_base(self, depth: int, frame_words: int) -> int:
        """Stack address of the frame at call depth ``depth``."""
        base = self.stack.base + depth * frame_words * WORD
        if base + frame_words * WORD > self.stack.limit:
            raise MemoryError("simulated stack exhausted")
        return base

    def global_addr(self, word_index: int) -> int:
        return self.globals.base + word_index * WORD

    def region_of(self, address: int) -> str:
        for base, limit, name in self._region_bounds:
            if base <= address < limit:
                return name
        return "unmapped"
