"""Hardware event counters and the two PIC registers.

The machine counts sixteen events unconditionally (the "ground truth"
bank an external sampler could observe, which is how the paper measures
uninstrumented baselines).  Programs can only observe events through
the two 32-bit PIC registers, each mapped to one event, with wraparound
— the constraint that drives the paper's decision to measure short
acyclic paths (§3.3) and to read-after-write when zeroing (§3.1).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, List, Tuple

_WRAP = 1 << 32


class Event(IntEnum):
    """The sixteen countable events (UltraSPARC-inspired)."""

    CYCLES = 0
    INSTRS = 1
    DC_READ = 2
    DC_WRITE = 3
    DC_READ_MISS = 4
    DC_WRITE_MISS = 5
    DC_MISS = 6          # read + write misses combined
    IC_REF = 7
    IC_MISS = 8
    BRANCHES = 9
    BR_TAKEN = 10
    BR_MISPRED = 11
    SB_STALL = 12        # cycles stalled on a full store buffer
    FP_STALL = 13        # cycles stalled on FP latency
    LOADS = 14
    STORES = 15


NUM_EVENTS = len(Event)


class CounterBank:
    """The free-running 64-bit event counters (ground truth).

    Stored as a plain list indexed by :class:`Event` so the interpreter
    can increment with one indexed add.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: List[int] = [0] * NUM_EVENTS

    def snapshot(self) -> Dict[Event, int]:
        return {event: self.counts[event] for event in Event}

    def __getitem__(self, event: Event) -> int:
        return self.counts[event]

    def diff(self, earlier: Dict[Event, int]) -> Dict[Event, int]:
        return {event: self.counts[event] - earlier[event] for event in Event}


class PicRegisters:
    """The two programmable counters a program can actually read.

    Each PIC register shows ``(event_count - base) mod 2**32`` where
    ``base`` was latched by the last write.  ``write_zero`` models the
    UltraSPARC sequence: the write does not take effect for subsequent
    instructions until a read completes (the simulator exposes this as
    :attr:`pending_read` which :meth:`confirm` clears; the HwcZero
    pseudo-instruction always performs the confirming read, and tests
    assert the flag never leaks).
    """

    __slots__ = ("bank", "pic0_event", "pic1_event", "_base0", "_base1", "pending_read")

    def __init__(
        self,
        bank: CounterBank,
        pic0_event: Event = Event.INSTRS,
        pic1_event: Event = Event.DC_MISS,
    ) -> None:
        self.bank = bank
        self.pic0_event = pic0_event
        self.pic1_event = pic1_event
        self._base0 = 0
        self._base1 = 0
        self.pending_read = False

    def configure(self, pic0_event: Event, pic1_event: Event) -> None:
        """Select which events the two PICs observe (privileged op)."""
        self.pic0_event = pic0_event
        self.pic1_event = pic1_event
        self._base0 = self.bank.counts[pic0_event]
        self._base1 = self.bank.counts[pic1_event]

    def read(self) -> Tuple[int, int]:
        """One instruction reads both 32-bit counters (rd %pic)."""
        self.pending_read = False
        pic0 = (self.bank.counts[self.pic0_event] - self._base0) % _WRAP
        pic1 = (self.bank.counts[self.pic1_event] - self._base1) % _WRAP
        return pic0, pic1

    def write_zero(self) -> None:
        """Zero both counters; requires a confirming read (§3.1)."""
        self._base0 = self.bank.counts[self.pic0_event]
        self._base1 = self.bank.counts[self.pic1_event]
        self.pending_read = True

    def write_values(self, pic0: int, pic1: int) -> None:
        """Restore previously saved counter readings (used by HwcRestore)."""
        self._base0 = (self.bank.counts[self.pic0_event] - pic0) % _WRAP
        self._base1 = (self.bank.counts[self.pic1_event] - pic1) % _WRAP
        self.pending_read = True
