"""Trace-tier execution: superblock compilation of hot block chains.

The block engine (:mod:`repro.machine.engine`) compiles each basic
block once, but every block boundary still costs a Python call, a
``frame.regs`` reload, a link-cell dispatch and a counter flush.  This
tier sits above it and removes those boundaries for the hot paths:

* **Hot-chain detection.**  Every branch transfer bumps a per-block
  heat counter in a dispatch dictionary.  When a block's count crosses
  :data:`TRACE_THRESHOLD`, the engine records the *next* chain of
  branch transfers starting from that block — following unconditional
  branches and whichever conditional arm execution actually takes —
  until the chain loops back to its head, revisits a member, runs into
  an untraceable block (calls, returns, setjmp/longjmp, non-fused
  instrumentation), or hits :data:`MAX_TRACE_BLOCKS`.

* **Superblock compilation.**  The recorded chain is compiled into one
  generated Python function.  Architectural registers referenced by
  the trace live in Python *locals* across former block boundaries
  (``_r7`` instead of ``regs[7]``); a chain that loops back to its
  head becomes a real ``while True:`` loop in generated code; fetch
  and memory-event costs batch across the whole chain and flush once
  per observer or per loop iteration instead of once per block; the
  fused instrumentation probes of the block engine are inherited
  verbatim, so flow, context and combined profiling modes all run on
  the trace tier.

* **Deoptimization.**  The off-trace arm of every conditional branch
  (and the final transfer of a non-looping trace) exits the trace with
  an *exact state handoff*: pending counter sums are materialized,
  written-back registers are stored to ``frame.regs``, the I-cache
  line cell is synced, and ``frame.block_name``/``frame.index`` point
  at the successor block.  The block engine continues as if it had
  executed the whole prefix itself, so counters stay bit-identical to
  the reference interpreter (the differential suites enforce this).
  A mid-trace budget overflow performs the same handoff before
  raising, and every run revalidates compiled traces against each
  chain block's ``edit_gen`` exactly like the decoded-block cache.

* **Conservative preconditions.**  Runs with an attached tracer or an
  installed signal handler delegate wholesale to the block engine:
  both observe execution at block granularity, and modelling their
  timing inside superblocks would buy complexity, not speed.

Compiled traces are cached at three levels: per machine (the bound
function in the dispatch dictionary), per block (generated source and
code object on the chain head's ``Block._trace_cache``, shared by all
machines simulating the program), and on disk
(:mod:`repro.machine.codecache`, content-addressed, so a *new process*
skips codegen entirely on warm start).
"""

from __future__ import annotations

import hashlib
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Kind
from repro.machine.codecache import default_cache
from repro.machine.engine import (
    SEGMENT_CAP,
    _BR_MISPRED,
    _BR_TAKEN,
    _BRANCHES,
    _CYCLES,
    _DC_READ,
    _DC_WRITE,
    _FP_STALL,
    _IC_MISS,
    _IC_REF,
    _INLINE_KINDS,
    _INSTRS,
    _LOADS,
    _STORES,
    _SegmentWriter,
    _config_key,
    _fuse_plan,
    _probe_key,
    _resolve_probe_spec,
)

#: Branch-transfer count at which a block becomes a trace head.
TRACE_THRESHOLD = 8

#: Upper bound on blocks fused into one trace.  Together with
#: :data:`repro.machine.engine.SEGMENT_CAP` this bounds how far past
#: ``max_instructions`` one loop iteration can run before the
#: back-edge budget check fires.
MAX_TRACE_BLOCKS = 16

#: Dispatch-table sentinel: this block was evaluated as a trace head
#: and rejected (untraceable, or a non-looping chain too short to pay
#: for its deopt overhead).  Stops repeated recording attempts.
BLACKLIST = object()

#: Entries kept in a head block's ``_trace_cache`` (differently
#: instrumented machines key differently; the dict stays tiny).
_BLOCK_CACHE_CAP = 8


def _threshold() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_TRACE_THRESHOLD", "")))
    except ValueError:
        return TRACE_THRESHOLD


def _traceable_block(machine, block) -> bool:
    """Whether ``block`` can be a trace member.

    Every instruction must compile inline or fuse (closure handlers
    read ``frame.regs`` and would see stale values under register
    residency), the terminator must be a branch (call/return chains
    are the block engine's job), and the block must fit one segment.
    """
    instrs = block.instrs
    if not instrs or len(instrs) > SEGMENT_CAP:
        return False
    term_kind = instrs[-1].kind
    if term_kind != Kind.BR and term_kind != Kind.CBR:
        return False
    for instr in instrs[:-1]:
        kind = instr.kind
        if kind in _INLINE_KINDS:
            continue
        if _fuse_plan(machine, instr) is None:
            return False
    return True


# ---------------------------------------------------------------------------
# Trace code generation
# ---------------------------------------------------------------------------


class _TraceWriter(_SegmentWriter):
    """Segment writer with registers held in Python locals.

    Inherits every instruction body and fused probe from the block
    engine's writer; only the three register-access hooks change, plus
    trace-specific emission for junctions (exits and the back edge).
    """

    def __init__(self, machine, fname: str):
        super().__init__(machine, fname, alloc_link=None)
        #: Registers the trace ever reads / writes.  All referenced
        #: registers are loaded into locals at entry (so an exit taken
        #: before a later write can write back the *original* value),
        #: and all written registers are stored back at every exit.
        self.reg_reads: set = set()
        self.reg_writes: set = set()

    def rd(self, reg: int) -> str:
        self.reg_reads.add(reg)
        return f"_r{reg}"

    def wr(self, reg: int) -> str:
        self.reg_writes.add(reg)
        return f"_r{reg}"

    def rw(self, reg: int) -> str:
        self.reg_reads.add(reg)
        self.reg_writes.add(reg)
        return f"_r{reg}"

    # -- junction emission -----------------------------------------------------

    def peek_flush(self, indent: int) -> None:
        """Materialize pending cost sums *without* clearing them.

        Exit arms live inside conditionals: the fall-through path
        still owes the same pending sums, so the writer state must
        survive the arm.
        """
        if self.n:
            self.emit(f"counts[{_IC_REF}] += {self.n}", indent)
            self.emit(f"counts[{_INSTRS}] += {self.icost}", indent)
            self.emit(f"counts[{_CYCLES}] += {self.icost + self.fp}", indent)
            if self.fp:
                self.emit(f"counts[{_FP_STALL}] += {self.fp}", indent)
        if self.loads:
            self.emit(f"counts[{_LOADS}] += {self.loads}", indent)
            self.emit(f"counts[{_DC_READ}] += {self.loads}", indent)
        if self.stores:
            self.emit(f"counts[{_STORES}] += {self.stores}", indent)
            self.emit(f"counts[{_DC_WRITE}] += {self.stores}", indent)

    def emit_handoff(self, target: str, indent: int) -> None:
        """Deoptimize: exact state handoff, then back to the block engine."""
        self.peek_flush(indent)
        self.emit(f"_il[0] = {self.prev_iline}", indent)
        self.lines.append(("wb", indent))
        self.emit(f"frame.block_name = {target!r}", indent)
        self.emit("frame.index = 0", indent)

    def emit_exit(self, target: str, indent: int) -> None:
        self.emit_handoff(target, indent)
        self.emit("return None", indent)

    def emit_backedge(
        self, head_name: str, head_addr: int, head_iline: int, max_instructions: int
    ) -> None:
        """Close the loop: flush, budget check, head I-cache probe."""
        tail_iline = self.prev_iline
        self.flush_costs()
        # The budget check the block engine would perform before the
        # head's next segment; the handoff makes the abort state (and
        # the counters at the raise) identical to deoptimizing first.
        self.emit(f"if counts[{_INSTRS}] > {max_instructions}:")
        self.emit_handoff(head_name, indent=3)
        self.emit(
            f'    raise _ME("instruction budget exceeded ({max_instructions})")'
        )
        if tail_iline != head_iline:
            self.emit(f"if not _ica({head_addr}):")
            self.emit(f"    counts[{_IC_MISS}] += 1")
            self.emit(f"    counts[{_CYCLES}] += {self.penalty}")
        self.emit("continue")
        self.prev_iline = head_iline


def _emit_junction(
    writer: _TraceWriter,
    term,
    addr: int,
    iline: int,
    next_name: Optional[str],
    backedge: Optional[Tuple[str, int, int, int]],
) -> None:
    """Emit one chain block's terminator.

    ``next_name`` is the on-trace successor (``None`` when every arm
    exits); ``backedge`` carries ``(head_name, head_addr, head_iline,
    max_instructions)`` when the on-trace arm closes the loop.
    """
    writer.fetch(addr, iline, term.icost)
    if term.kind == Kind.BR:
        if next_name is None or term.target != next_name:
            writer.flush_costs()
            writer.emit_exit(term.target, indent=2)
        elif backedge is not None:
            writer.emit_backedge(*backedge)
        return
    # CBR: emit the off-trace arm as the conditional body, fall
    # through into the on-trace arm.  Branch counters are plain adds —
    # no observer runs between here and the next flush, so they batch
    # through junctions exactly like fetch costs do.
    mp = writer.config.mispredict_penalty
    writer.emit(f"counts[{_BRANCHES}] += 1")
    if term.then == next_name:
        writer.emit(f"if {writer.rd(term.cond)} == 0:")
        writer.emit(f"    if not _prd({addr}, False):")
        writer.emit(f"        counts[{_BR_MISPRED}] += 1")
        writer.emit(f"        counts[{_CYCLES}] += {mp}")
        writer.emit_exit(term.els, indent=3)
        writer.emit(f"counts[{_BR_TAKEN}] += 1")
        writer.emit(f"if not _prd({addr}, True):")
        writer.emit(f"    counts[{_BR_MISPRED}] += 1")
        writer.emit(f"    counts[{_CYCLES}] += {mp}")
        if backedge is not None:
            writer.emit_backedge(*backedge)
    elif term.els == next_name:
        writer.emit(f"if {writer.rd(term.cond)} != 0:")
        writer.emit(f"    counts[{_BR_TAKEN}] += 1")
        writer.emit(f"    if not _prd({addr}, True):")
        writer.emit(f"        counts[{_BR_MISPRED}] += 1")
        writer.emit(f"        counts[{_CYCLES}] += {mp}")
        writer.emit_exit(term.then, indent=3)
        writer.emit(f"if not _prd({addr}, False):")
        writer.emit(f"    counts[{_BR_MISPRED}] += 1")
        writer.emit(f"    counts[{_CYCLES}] += {mp}")
        if backedge is not None:
            writer.emit_backedge(*backedge)
    else:
        # Non-looping trace tail: both arms deoptimize.
        writer.emit(f"if {writer.rd(term.cond)} != 0:")
        writer.emit(f"    counts[{_BR_TAKEN}] += 1")
        writer.emit(f"    if not _prd({addr}, True):")
        writer.emit(f"        counts[{_BR_MISPRED}] += 1")
        writer.emit(f"        counts[{_CYCLES}] += {mp}")
        writer.emit_exit(term.then, indent=3)
        writer.emit(f"if not _prd({addr}, False):")
        writer.emit(f"    counts[{_BR_MISPRED}] += 1")
        writer.emit(f"    counts[{_CYCLES}] += {mp}")
        writer.emit_exit(term.els, indent=2)


def _generate_trace(machine, function, chain: List, loop_back: bool):
    """Produce ``(source, code, specs)`` for one recorded chain.

    Pure in the chain's instruction content, the laid-out addresses
    and the same config/probe constants the block generator bakes in,
    so the result is shared through the head block's ``_trace_cache``
    and the on-disk code cache.
    """
    fname = function.name
    layout = machine.layout.block_addrs
    line_bits = machine._icache_line_bits
    names = [block.name for block in chain]

    head = chain[0]
    head_addrs = layout[(fname, head.name)]
    head_addr = head_addrs[0]
    head_iline = head_addr >> line_bits
    max_instructions = machine.config.max_instructions

    flat_instrs: List = []
    for block in chain:
        flat_instrs.extend(block.instrs)

    writer = _TraceWriter(machine, fname)
    writer.prev_iline = head_iline  # the entry check below establishes it
    writer.cell_stale = True

    flat_base = 0
    for position, block in enumerate(chain):
        instrs = block.instrs
        addrs = layout[(fname, block.name)]
        for i, instr in enumerate(instrs[:-1]):
            addr = addrs[i]
            iline = addr >> line_bits
            if instr.kind in _INLINE_KINDS:
                writer.inline(instr, addr, iline)
            else:
                plan = _fuse_plan(machine, instr)
                writer.fuse(plan, instr, flat_base + i, addr, iline)
        term = instrs[-1]
        if position + 1 < len(chain):
            next_name = names[position + 1]
            backedge = None
        elif loop_back:
            next_name = names[0]
            backedge = (head.name, head_addr, head_iline, max_instructions)
        else:
            next_name = None
            backedge = None
        _emit_junction(
            writer, term, addrs[-1], addrs[-1] >> line_bits, next_name, backedge
        )
        flat_base += len(instrs)

    specs = tuple(spec for _tag, spec in writer.extras)
    params = "".join(f", _pb{i}" for i in range(len(specs)))
    regs_used = sorted(writer.reg_reads | writer.reg_writes)
    writebacks = sorted(writer.reg_writes)

    shape = " -> ".join(names) + (" -> (loop)" if loop_back else "")
    lines: List[str] = [f"# trace {fname}: {shape}"]
    lines.append(
        f"def _maketrace(machine, counts, _il, _ica, _dca, _mrd, _mwr, _sbp, _nms, _rmc, _prd{params}):"
    )
    lines.append("    def _trace(frame):")
    lines.append("        regs = frame.regs")
    for reg in regs_used:
        lines.append(f"        _r{reg} = regs[{reg}]")
    # Dynamic entry check for the head's first fetch — the same test
    # the block engine performs at every segment head.
    lines.append(f"        if {head_iline} != _il[0]:")
    lines.append(f"            if not _ica({head_addr}):")
    lines.append(f"                counts[{_IC_MISS}] += 1")
    lines.append(f"                counts[{_CYCLES}] += {writer.penalty}")
    lines.append("        while True:")
    for entry in writer.lines:
        if entry.__class__ is tuple:
            _tag, indent = entry
            for reg in writebacks:
                lines.append("    " * (indent + 1) + f"regs[{reg}] = _r{reg}")
        else:
            lines.append("    " + entry)
    lines.append("    return _trace")
    source = "\n".join(lines) + "\n"
    code = compile(source, f"<trace {fname}:{names[0]}>", "exec")
    return source, code, specs


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def _chain_key(machine, function, chain: List, loop_back: bool) -> Tuple:
    """In-process cache key (mirrors the decoded-block cache key)."""
    layout = machine.layout.block_addrs
    fname = function.name
    return (
        tuple(
            (
                block.name,
                block.edit_gen,
                len(block.instrs),
                layout[(fname, block.name)][0],
            )
            for block in chain
        ),
        loop_back,
        _config_key(machine.config),
        machine.config.max_instructions,
        tuple(_probe_key(machine, block.instrs) for block in chain),
    )


def disk_key(machine, function, chain: List, loop_back: bool) -> str:
    """Content-addressed key for the on-disk code cache.

    ``edit_gen`` orders edits within one process only, so the disk key
    hashes what the generation guards in memory: the instruction reprs
    (dataclass reprs are complete and stable) plus the addresses,
    config constants and probe fingerprints that appear as literals in
    the generated source.  The interpreter cache tag scopes marshalled
    code objects to the interpreter that produced them.
    """
    fname = function.name
    layout = machine.layout.block_addrs
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                sys.implementation.cache_tag,
                loop_back,
                _config_key(machine.config),
                machine.config.max_instructions,
            )
        ).encode()
    )
    for block in chain:
        digest.update(
            repr(
                (
                    fname,
                    block.name,
                    tuple(layout[(fname, block.name)]),
                    _probe_key(machine, block.instrs),
                )
            ).encode()
        )
        for instr in block.instrs:
            digest.update(repr(instr).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Compilation driver and per-machine state
# ---------------------------------------------------------------------------


class TraceMeta:
    """Validation metadata for one compiled trace (cf. DecodedBlock)."""

    __slots__ = ("chain", "runtimes", "source")

    def __init__(self, chain: Tuple, runtimes: Tuple, source: str):
        #: ``((block_name, edit_gen, n_instrs), ...)`` for every member.
        self.chain = chain
        self.runtimes = runtimes
        self.source = source


def compile_trace(machine, function, names: List[str], loop_back: bool, state):
    """Compile one recorded chain and bind it to ``machine``.

    Returns ``(trace_fn, meta)``.  Generation is skipped when either
    the head block's in-process cache or the on-disk code cache
    already holds this chain's compiled form.
    """
    from repro.machine.vm import MachineError

    chain = [function.block(name) for name in names]
    head = chain[0]
    stats = machine.trace_stats
    key = _chain_key(machine, function, chain, loop_back)

    block_cache = head._trace_cache
    entry = None if block_cache is None else block_cache.get(key)
    if entry is None:
        source = code = specs = None
        disk = state.disk
        if disk is not None:
            dkey = disk_key(machine, function, chain, loop_back)
            cached = disk.get(dkey)
            if cached is not None and len(cached) == 3:
                source, code, specs = cached
                stats["disk_cache_hits"] += 1
            else:
                stats["disk_cache_misses"] += 1
        if code is None:
            source, code, specs = _generate_trace(machine, function, chain, loop_back)
            stats["traces_generated"] += 1
            if disk is not None:
                disk.put(dkey, source, (source, code, specs))
        if block_cache is None:
            block_cache = head._trace_cache = {}
        elif len(block_cache) >= _BLOCK_CACHE_CAP:
            block_cache.clear()
        block_cache[key] = (source, code, specs)
    else:
        source, code, specs = entry

    namespace = machine._codegen_namespace()
    if "_ME" not in namespace:
        namespace["_ME"] = MachineError
    flat_instrs: List = []
    for block in chain:
        flat_instrs.extend(block.instrs)
    exec(code, namespace)
    maker = namespace["_maketrace"]
    extras = [_resolve_probe_spec(machine, flat_instrs, spec) for spec in specs]
    trace_fn = maker(
        machine,
        machine.counters.counts,
        machine._iline,
        machine.icache.access,
        machine.dcache.access,
        machine.memory._store.get,
        machine.memory._store.__setitem__,
        machine._store_buffer_push,
        machine._note_miss,
        machine._read_miss_cycles,
        machine.predictor.predict_and_update,
        *extras,
    )
    meta = TraceMeta(
        tuple((block.name, block.edit_gen, len(block.instrs)) for block in chain),
        (machine.path_runtime, machine.cct_runtime),
        source,
    )
    stats["traces_compiled"] += 1
    stats["trace_blocks"] += len(chain)
    return trace_fn, meta


class TraceState:
    """Per-machine trace tier state: heat, compiled traces, recorder."""

    __slots__ = ("threshold", "dispatch", "traces", "recording", "disk")

    def __init__(self, machine):
        self.threshold = _threshold()
        #: ``(fname, bname) -> heat count | BLACKLIST | trace function``.
        self.dispatch: Dict[Tuple[str, str], object] = {}
        self.traces: Dict[Tuple[str, str], TraceMeta] = {}
        #: Active recording: ``(function, [block names])`` or None.
        self.recording: Optional[Tuple] = None
        self.disk = default_cache()

    def invalidate(self) -> None:
        self.dispatch.clear()
        self.traces.clear()
        self.recording = None

    def begin_run(self, machine) -> None:
        """Evict traces whose chain blocks or runtimes went stale.

        The same per-run sweep the decoded-block cache performs:
        programs cannot be edited mid-run, so validating once per run
        lets the hot dispatch path skip all checks.
        """
        self.recording = None
        functions = machine.program.functions
        runtimes = (machine.path_runtime, machine.cct_runtime)
        stale = []
        for key, meta in self.traces.items():
            function = functions.get(key[0])
            ok = (
                function is not None
                and meta.runtimes[0] is runtimes[0]
                and meta.runtimes[1] is runtimes[1]
            )
            if ok:
                for bname, edit_gen, n_instrs in meta.chain:
                    try:
                        block = function.block(bname)
                    except KeyError:
                        ok = False
                        break
                    if block.edit_gen != edit_gen or len(block.instrs) != n_instrs:
                        ok = False
                        break
            if not ok:
                stale.append(key)
        for key in stale:
            del self.traces[key]
            del self.dispatch[key]
            # The head's DecodedBlock may have latched the stale trace
            # function (it survives when only a *member* block changed).
            decoded = machine._decoded.get(key)
            if decoded is not None:
                decoded.hot = None

    # -- recording -------------------------------------------------------------

    def maybe_start(self, machine, function, key) -> None:
        """A block crossed the heat threshold: record or blacklist it."""
        block = function.block(key[1])
        if _traceable_block(machine, block):
            self.recording = (function, [key[1]])
        else:
            self.dispatch[key] = BLACKLIST

    def record(self, machine, function, key) -> None:
        """One branch transfer while recording: extend or finalize."""
        fn, names = self.recording
        bname = key[1]
        if function is not fn:  # pragma: no cover - branches stay in-function
            self.recording = None
            return
        if bname == names[0]:
            self._finalize(machine, loop_back=True)
            return
        if bname in names:
            self._finalize(machine, loop_back=False)
            return
        existing = self.dispatch.get(key)
        if (
            existing is not None
            and existing.__class__ is not int
            and existing is not BLACKLIST
        ):
            # The chain runs into an already-compiled trace: natural end.
            self._finalize(machine, loop_back=False)
            return
        if len(names) >= MAX_TRACE_BLOCKS:
            self._finalize(machine, loop_back=False)
            return
        if not _traceable_block(machine, function.block(bname)):
            self._finalize(machine, loop_back=False)
            return
        names.append(bname)

    def _finalize(self, machine, loop_back: bool) -> None:
        function, names = self.recording
        self.recording = None
        head_key = (function.name, names[0])
        if not loop_back and len(names) < 2:
            # A one-block non-looping trace is all deopt overhead.
            self.dispatch[head_key] = BLACKLIST
            return
        trace_fn, meta = compile_trace(machine, function, names, loop_back, self)
        self.dispatch[head_key] = trace_fn
        self.traces[head_key] = meta
        decoded = machine._decoded.get(head_key)
        if decoded is not None:
            decoded.hot = trace_fn


# ---------------------------------------------------------------------------
# Outer run loop
# ---------------------------------------------------------------------------


def execute(machine):
    """Run ``machine`` to completion with the trace tier enabled.

    Cold blocks execute on the block engine unchanged; branch
    transfers feed the heat counters; hot chains enter their compiled
    traces.  Runs with a tracer or a signal handler attached delegate
    wholesale to the block engine (see the module docstring).
    """
    from repro.machine import engine as _engine
    from repro.machine.vm import MachineError

    if machine.tracer is not None or machine._signal_handler is not None:
        return _engine.execute(machine)

    state = machine._trace_state
    if state is None:
        state = machine._trace_state = TraceState(machine)
    state.begin_run(machine)
    machine._validate_decoded()

    counts = machine.counters.counts
    frames = machine._frames
    max_instructions = machine.config.max_instructions
    decoded_cache = machine._decoded
    dispatch = state.dispatch
    threshold = state.threshold
    stats = machine.trace_stats
    INSTRS = _INSTRS

    while frames:
        frame = frames[-1]
        function = frame.function
        key = (function.name, frame.block_name)
        index = frame.index
        decoded = decoded_cache.get(key)
        if decoded is None:
            decoded = machine._decoded_block(function, frame.block_name)
        if index == 0:
            # Function entries (calls land here) feed the same heat
            # counters as branch transfers, so a hot helper's body can
            # become a trace even when it is never branched to.
            d = decoded.hot
            if d is None and state.recording is None:
                d = dispatch.get(key)
                if d is None:
                    dispatch[key] = 1
                elif d.__class__ is int:
                    d += 1
                    dispatch[key] = d
                    if d >= threshold:
                        state.maybe_start(machine, function, key)
                    d = None
                else:
                    # Resolved (trace or BLACKLIST): latch for next time.
                    decoded.hot = d
            if d is not None and d is not BLACKLIST and state.recording is None:
                stats["trace_entries"] += 1
                d(frame)
                continue
        k = 0 if index == 0 else decoded.resume[index]
        steps = decoded.steps
        nsteps = decoded.nsteps
        while True:
            if counts[INSTRS] > max_instructions:
                raise MachineError(f"instruction budget exceeded ({max_instructions})")
            r = steps[k](frame)
            if r is True:
                # Call, return or longjmp: a chain cannot cross it.
                if state.recording is not None:
                    state._finalize(machine, loop_back=False)
                break
            if r is False:
                k += 1
                if k >= nsteps:
                    raise MachineError(
                        f"{function.name}.{frame.block_name}: fell through block end"
                    )
                continue
            # Branch transfer within the same frame; the segment code
            # already pointed frame.block_name/index at the successor.
            d = r.hot
            if d is not None and state.recording is None:
                # Resolved block: one slot load, no dict lookup.
                if d is not BLACKLIST:
                    stats["trace_entries"] += 1
                    d(frame)
                    break
                decoded = r
                steps = decoded.steps
                nsteps = decoded.nsteps
                k = 0
                continue
            key = r.key
            if state.recording is not None:
                state.record(machine, function, key)
            d = dispatch.get(key)
            if d is None:
                dispatch[key] = 1
            elif d.__class__ is int:
                d += 1
                dispatch[key] = d
                if d >= threshold and state.recording is None:
                    state.maybe_start(machine, function, key)
            elif d is not BLACKLIST:
                r.hot = d
                stats["trace_entries"] += 1
                d(frame)
                break
            else:
                r.hot = BLACKLIST
            decoded = r
            steps = decoded.steps
            nsteps = decoded.nsteps
            k = 0

    return machine._return_value


__all__ = [
    "BLACKLIST",
    "MAX_TRACE_BLOCKS",
    "TRACE_THRESHOLD",
    "TraceMeta",
    "TraceState",
    "compile_trace",
    "disk_key",
    "execute",
]
