"""Machine configuration, defaulting to UltraSPARC-I-like parameters.

The numbers mirror the machine the paper measured on where documented
(16KB direct-mapped on-chip L1 D-cache with 32-byte lines, §6.4.1;
two 32-bit PIC counters, §3.3) and use plausible mid-90s values
elsewhere.  Experiments vary these to stress the analyses, and the
ablation benchmarks sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MachineConfig:
    # --- L1 data cache (paper: 16KB, direct mapped, on chip) ---
    dcache_size: int = 16 * 1024
    dcache_line: int = 32
    dcache_assoc: int = 1
    #: Cycles added to a load that misses L1 (off-chip fill).
    dcache_read_miss_penalty: int = 6
    #: UltraSPARC's L1 D is write-through, no write-allocate: a write
    #: miss does not fill the line; its cost is absorbed by the store
    #: buffer unless the buffer is full.
    dcache_write_allocate: bool = False

    # --- optional unified L2 (UltraSPARC systems had 512KB-4MB e-cache) ---
    #: When enabled, an L1 miss probes the L2: an L2 hit costs the L1
    #: miss penalty; an L2 miss costs ``l2_miss_penalty`` instead.
    l2_enabled: bool = False
    l2_size: int = 512 * 1024
    l2_line: int = 64
    l2_assoc: int = 4
    l2_miss_penalty: int = 30

    # --- L1 instruction cache (UltraSPARC: 16KB, 2-way, 32B) ---
    icache_size: int = 16 * 1024
    icache_line: int = 32
    icache_assoc: int = 2
    icache_miss_penalty: int = 5

    # --- branch prediction ---
    predictor_entries: int = 512
    mispredict_penalty: int = 4

    # --- store buffer ---
    store_buffer_depth: int = 8
    #: Cycles the memory system needs to retire one store.
    store_drain_cycles: int = 2

    # --- floating point latencies per op ---
    fp_latencies: Dict[str, int] = field(
        default_factory=lambda: {"fadd": 3, "fsub": 3, "fmul": 3, "fdiv": 12}
    )

    # --- frames / memory map ---
    #: 8-byte words reserved per activation frame (spill slots, saved
    #: gCSP, saved counters).
    frame_words: int = 32
    #: Maximum call depth before the machine reports stack overflow.
    max_call_depth: int = 4096

    # --- safety valve for runaway programs ---
    max_instructions: int = 500_000_000

    def validate(self) -> None:
        if self.dcache_size % (self.dcache_line * self.dcache_assoc):
            raise ValueError("dcache size must be a multiple of line*assoc")
        if self.l2_enabled and self.l2_size % (self.l2_line * self.l2_assoc):
            raise ValueError("l2 size must be a multiple of line*assoc")
        if self.icache_size % (self.icache_line * self.icache_assoc):
            raise ValueError("icache size must be a multiple of line*assoc")
        if self.predictor_entries & (self.predictor_entries - 1):
            raise ValueError("predictor_entries must be a power of two")
