"""The simulated processor: the paper's UltraSPARC substitute.

The paper reads real hardware performance counters; Python exposes no
such thing, so we execute IR programs on a deterministic machine model
that maintains the same sixteen event counters the UltraSPARC documents
(instructions, cycles, cache events, branch events, stall cycles) and
exposes two programmable PIC registers with 32-bit wrap semantics,
including the write-then-read requirement the paper works around
(§3.1).  Instrumentation executes on the same machine, so it perturbs
the caches, the predictor, and the counters — which is precisely the
phenomenon Table 2 studies.

Two interchangeable execution engines run the IR (``Machine(...,
engine=...)``): ``"simple"``, the reference if/elif interpreter, and
``"fast"`` (default), the predecoded block engine in
:mod:`repro.machine.engine` — decode-once cached segments with
block-static cost sums and I-cache probe points hoisted out of the hot
loop.  The two are bit-identical in every counter; see docs/API.md.
"""

from repro.machine.config import MachineConfig
from repro.machine.counters import Event, CounterBank, PicRegisters
from repro.machine.caches import DirectMappedCache, SetAssociativeCache
from repro.machine.branch import TwoBitPredictor
from repro.machine.memory import MemoryMap, Region
from repro.machine.vm import Machine, MachineError, RunResult

__all__ = [
    "CounterBank",
    "DirectMappedCache",
    "Event",
    "Machine",
    "MachineConfig",
    "MachineError",
    "MemoryMap",
    "PicRegisters",
    "Region",
    "RunResult",
    "SetAssociativeCache",
    "TwoBitPredictor",
]
